// Crash-durable progress for the solve stage: a CheckpointLedger records
// every property value the engine finishes, keyed by the full solve identity
// (constant-override key, explored state/transition counts, property text),
// and persists the records atomically into a per-job snapshot file. A
// restarted CLI run — or a respawned serve worker handed the same request —
// loads the snapshot and replays recorded values bit-exactly (doubles travel
// as the hex of their IEEE-754 bit pattern, never through decimal), while
// everything not yet recorded is recomputed by the deterministic engine. The
// resumed result is therefore bit-identical to an uninterrupted run, and an
// interruption costs at most the work since the last persist.
//
// Scope: the ledger checkpoints at the evaluate() safepoint — the same
// boundary where util::ResourceBudget charges and util::fault polls
// "solve.cancel". Stages below it (exploration frontier, solver iterates)
// are deliberately not serialized: they rebuild deterministically in
// explore/uniformize time, which the DAC'15 workload amortizes across the
// dozens of properties of one batch. The ledger turns an N-property batch
// interrupted at property k into a resume that recomputes stages plus the
// N-k missing solves, not all N.
//
// Snapshot file, named <fnv1a64(identity)>.ckpt under the checkpoint dir:
//
//   line 1: "autosec-checkpoint-v1"            format header
//   line 2: "identity <hex64>"                 digest of the job identity
//   line 3: "payload <hex64>"                  digest of line 4
//   line 4: {"records":{<key>:<hex bits>,...}} single-line JSON
//
// Writes go to a temp file and rename() into place — a crash mid-persist
// leaves the previous snapshot, never a torn one. Any validation failure on
// load (bad header, wrong identity, payload digest mismatch, malformed JSON)
// unlinks the file and resumes cold: corruption degrades to recomputation,
// never to a wrong answer.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace autosec::csl {

struct CheckpointOptions {
  /// Directory holding snapshot files (created if needed).
  std::string dir;
  /// Full job identity: everything that determines the batch's results
  /// (architecture content digest + request knobs for serve, file content +
  /// CLI options for the CLI). Digested for the snapshot filename and
  /// validated on load.
  std::string identity;
  /// Minimum milliseconds between persists; 0 persists after every record
  /// (the strongest durability, what the resume tests use). flush() and the
  /// destructor persist regardless.
  uint64_t interval_ms = 0;
};

class CheckpointLedger {
 public:
  /// Throws std::runtime_error when the directory cannot be created.
  explicit CheckpointLedger(CheckpointOptions options);
  /// Best-effort final persist of dirty records.
  ~CheckpointLedger();

  CheckpointLedger(const CheckpointLedger&) = delete;
  CheckpointLedger& operator=(const CheckpointLedger&) = delete;

  /// Load the job's snapshot if one exists. Returns the number of records
  /// recovered; invalid snapshots are unlinked and count as 0.
  size_t load();

  /// Recorded value for `key`, bit-exact. True on a hit.
  bool lookup(const std::string& key, double* value) const;

  /// Record a finished solve and persist when the interval allows. Thread-
  /// safe (check_all records from the parallel fan-out).
  void record(const std::string& key, double value);

  /// Persist now if anything is dirty.
  void flush();

  size_t size() const;
  /// Snapshot writes so far — the unit of checkpoint overhead the Fig. 5
  /// bench gate accounts (persists x per-persist cost / wall).
  uint64_t persists() const;
  /// Lookups answered from a loaded snapshot — how tests prove a resumed run
  /// actually replayed instead of recomputing.
  uint64_t resumed_hits() const;

  const std::string& path() const { return path_; }

 private:
  void persist_locked();

  CheckpointOptions options_;
  std::string path_;
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> records_;  ///< key -> double bit pattern
  bool dirty_ = false;
  uint64_t persists_ = 0;
  mutable uint64_t resumed_hits_ = 0;
  size_t loaded_records_ = 0;
  /// Steady-clock ms at the last persist (0 = never), for interval gating.
  uint64_t last_persist_ms_ = 0;
};

}  // namespace autosec::csl
