#include "csl/session.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <thread>

#include "csl/checkpoint.hpp"
#include "csl/property_parser.hpp"
#include "ctmc/rewards.hpp"
#include "ctmc/scc.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/vector_ops.hpp"
#include "mdp/strategy.hpp"
#include "util/failure.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace autosec::csl {

using symbolic::Expr;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Poll hook for the numeric kernels: a copy of the shared token, so the
/// options structs stay valid even if the session re-arms mid-solve.
std::function<bool()> poll_hook(const std::shared_ptr<util::CancelToken>& token) {
  if (!token) return {};
  return [token] { return token->expired(); };
}

}  // namespace

std::string override_cache_key(
    const std::vector<std::pair<std::string, symbolic::Value>>& overrides) {
  std::vector<std::pair<std::string, std::string>> parts;
  parts.reserve(overrides.size());
  for (const auto& [name, value] : overrides) {
    parts.emplace_back(name, value.to_string());
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const auto& [name, text] : parts) {
    key += name;
    key += '=';
    key += text;
    key += ';';
  }
  return key;
}

EngineSession::EngineSession(symbolic::Model model, SessionOptions options)
    : model_(std::move(model)),
      options_(std::move(options)),
      active_key_(override_cache_key(options_.constant_overrides)) {
  // The model-type axis always reflects the model actually held: a default
  // options struct on an mdp model must not silently demand a rate matrix.
  options_.model_type = model_->type;
  apply_plan(options_.plan, options_);
}

EngineSession::EngineSession(std::shared_ptr<const symbolic::StateSpace> space,
                             SessionOptions options)
    : options_(std::move(options)) {
  if (!space) throw PropertyError("EngineSession: null state space");
  options_.model_type = space->type();
  apply_plan(options_.plan, options_);
  if (!options_.constant_overrides.empty()) {
    throw PropertyError(
        "EngineSession: constant overrides require a symbolic model, not a "
        "pre-explored state space");
  }
  auto stages = std::make_unique<Stages>();
  stats_.engine = space->engine_name();
  stages->space = std::move(space);
  cache_.emplace_back(active_key_, std::move(stages));
  active_ = cache_.front().second.get();
}

void EngineSession::set_constant_overrides(
    std::vector<std::pair<std::string, symbolic::Value>> overrides) {
  if (!model_) {
    throw PropertyError(
        "EngineSession: cannot re-key constant overrides on a session built "
        "from a pre-explored state space");
  }
  options_.constant_overrides = std::move(overrides);
  active_key_ = override_cache_key(options_.constant_overrides);
  active_ = nullptr;  // re-resolved (and possibly rebuilt) on next use
}

ctmc::TransientOptions EngineSession::transient_options() const {
  ctmc::TransientOptions transient = options_.transient;
  if (!transient.cancelled) transient.cancelled = poll_hook(options_.cancel);
  if (!transient.budget) transient.budget = options_.budget;
  return transient;
}

ctmc::SteadyStateOptions EngineSession::steady_state_options() const {
  ctmc::SteadyStateOptions steady = options_.steady_state;
  if (!steady.solver.cancelled) steady.solver.cancelled = poll_hook(options_.cancel);
  return steady;
}

void EngineSession::check_cancel(const char* stage) const {
  if (options_.cancel) options_.cancel->check(stage);
}

EngineSession::Stages& EngineSession::prepare() {
  check_cancel("prepare");
  if (active_ == nullptr) {
    for (auto& [key, stages] : cache_) {
      if (key == active_key_) {
        active_ = stages.get();
        break;
      }
    }
    if (active_ == nullptr) {
      cache_.emplace_back(active_key_, std::make_unique<Stages>());
      active_ = cache_.back().second.get();
    }
  }
  Stages& stages = *active_;
  if (!stages.space) {
    // model_ is guaranteed here: space-adopting sessions seed their stage set
    // in the constructor and cannot re-key.
    auto start = std::chrono::steady_clock::now();
    try {
      util::metrics::ScopedSpan span("compile");
      stages.compiled = std::make_shared<const symbolic::CompiledModel>(
          symbolic::compile(*model_, options_.constant_overrides));
    } catch (const std::bad_alloc&) {
      throw util::EngineFailure(util::FailureCode::kOom, "compile",
                                "compile: out of memory");
    }
    stats_.compile_count += 1;
    stats_.compile_seconds += seconds_since(start);

    start = std::chrono::steady_clock::now();
    try {
      util::metrics::ScopedSpan span("explore");
      symbolic::ExploreOptions explore = options_.explore;
      if (!explore.budget) explore.budget = options_.budget;
      stages.space = std::make_shared<const symbolic::StateSpace>(
          symbolic::explore(stages.compiled, explore));
    } catch (const std::bad_alloc&) {
      util::FailureProgress progress;
      if (options_.budget) {
        progress.charged_bytes = options_.budget->charged_bytes();
      }
      throw util::EngineFailure(util::FailureCode::kOom, "explore",
                                "explore: out of memory", progress);
    }
    stats_.explore_count += 1;
    stats_.explore_seconds += seconds_since(start);
    stats_.engine = stages.space->engine_name();

    util::metrics::Registry& metrics = util::metrics::registry();
    if (metrics.enabled()) {
      metrics.add("session.compiles");
      metrics.add("session.explores");
      metrics.add("explore.states", stages.space->state_count());
      metrics.add("explore.transitions", stages.space->transition_count());
      metrics.add(std::string("explore.engine.") + stages.space->engine_name());
      metrics.gauge("explore.bytes_per_state",
                    static_cast<double>(stages.space->bytes_per_state()));
    }
  }
  // The CTMC stage exists only on the ctmc axis; an mdp space keeps its
  // flattened per-action matrix and value iteration consumes it directly.
  if (!stages.space->is_mdp() && !stages.chain) {
    stages.chain = stages.space->to_ctmc();
  }
  if (stages.initial.empty()) {
    stages.initial = stages.space->initial_distribution();
  }
  return stages;
}

const symbolic::StateSpace& EngineSession::space() { return *prepare().space; }

std::shared_ptr<const symbolic::StateSpace> EngineSession::space_ptr() {
  return prepare().space;
}

const ctmc::Ctmc& EngineSession::chain() {
  Stages& stages = prepare();
  if (stages.space->is_mdp()) {
    throw PropertyError(
        "chain(): this session holds an mdp model; there is no CTMC stage");
  }
  return *stages.chain;
}

const ctmc::Uniformized& EngineSession::uniformized() {
  Stages& stages = prepare();
  if (stages.space->is_mdp()) {
    throw PropertyError(
        "uniformized(): this session holds an mdp model; there is no CTMC stage");
  }
  return uniformized_of(stages);
}

const ctmc::SteadyStateResult& EngineSession::steady() {
  Stages& stages = prepare();
  if (stages.space->is_mdp()) {
    throw PropertyError(
        "steady(): steady-state analysis is not defined for mdp models");
  }
  return steady_of(stages);
}

const ctmc::Uniformized& EngineSession::uniformized_of(Stages& stages) {
  std::lock_guard<std::mutex> lock(stages.lazy_mutex);
  if (!stages.uniformized) {
    try {
      util::metrics::ScopedSpan span("uniformize");
      stages.uniformized = ctmc::uniformize(*stages.chain, transient_options());
    } catch (const std::bad_alloc&) {
      throw util::EngineFailure(util::FailureCode::kOom, "uniformize",
                                "uniformize: out of memory");
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.uniformize_count += 1;
  }
  return *stages.uniformized;
}

const ctmc::SteadyStateResult& EngineSession::steady_of(Stages& stages) {
  std::lock_guard<std::mutex> lock(stages.lazy_mutex);
  if (!stages.steady) {
    util::metrics::ScopedSpan span("steady_state");
    stages.steady =
        ctmc::steady_state(*stages.chain, stages.initial, steady_state_options());
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.steady_state_count += 1;
    stats_.solver_fallbacks += stages.steady->solver_fallbacks;
  }
  return *stages.steady;
}

Expr EngineSession::resolve_formula(const Stages& stages,
                                    const Expr& formula) const {
  // Labels are exposed to the resolver as pre-resolved formulas named
  // "label:<name>" — matching the encoding the expression parser emits for
  // quoted atoms.
  std::vector<std::pair<std::string, Expr>> label_formulas;
  for (const symbolic::CompiledLabel& label : stages.space->model().labels) {
    label_formulas.emplace_back("label:" + label.name, label.condition);
  }
  std::vector<std::string> variable_names;
  for (const symbolic::CompiledVariable& v : stages.space->model().variables) {
    variable_names.push_back(v.name);
  }
  const symbolic::SymbolScope scope{
      .constants = &stages.space->model().constant_values,
      .formulas = &label_formulas,
      .variables = &variable_names,
  };
  try {
    return formula.resolve(scope);
  } catch (const symbolic::EvalError& e) {
    throw PropertyError(std::string("state formula: ") + e.what());
  }
}

std::vector<bool> EngineSession::satisfying_in(const Stages& stages,
                                               const Expr& formula) const {
  return stages.space->satisfying(resolve_formula(stages, formula));
}

std::vector<bool> EngineSession::satisfying(const Expr& formula) {
  return satisfying_in(prepare(), formula);
}

double EngineSession::time_bound_in(const Stages& stages,
                                    const Property& property) const {
  if (!property.has_time_bound()) {
    throw PropertyError("property requires a time bound: " + property.source);
  }
  const Expr resolved = resolve_formula(stages, property.time_bound);
  symbolic::Value value;
  if (!resolved.as_literal(value) || !value.is_numeric()) {
    throw PropertyError("time bound does not fold to a number: " + property.source);
  }
  const double t = value.as_number();
  if (!(t >= 0.0)) throw PropertyError("negative time bound: " + property.source);
  return t;
}

double EngineSession::time_bound_value(const Property& property) {
  return time_bound_in(prepare(), property);
}

double EngineSession::check(const Property& property) {
  Stages& stages = prepare();
  const auto start = std::chrono::steady_clock::now();
  double value = 0.0;
  {
    util::metrics::ScopedSpan span("solve");
    value = evaluate(stages, property);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.solve_seconds += seconds_since(start);
  }
  return value;
}

double EngineSession::check(std::string_view property_text) {
  return check(parse_property(property_text));
}

bool EngineSession::satisfies(const Property& property) {
  if (property.is_query()) {
    throw PropertyError("satisfies: property is a =? query: " + property.source);
  }
  Stages& stages = prepare();
  const Expr resolved = resolve_formula(stages, property.bound_value);
  symbolic::Value bound;
  if (!resolved.as_literal(bound) || !bound.is_numeric()) {
    throw PropertyError("satisfies: bound does not fold to a number: " +
                        property.source);
  }
  const double value = check(property);
  const double threshold = bound.as_number();
  switch (property.bound) {
    case BoundKind::kLt: return value < threshold;
    case BoundKind::kLe: return value <= threshold;
    case BoundKind::kGt: return value > threshold;
    case BoundKind::kGe: return value >= threshold;
    case BoundKind::kQuery: break;
  }
  throw PropertyError("satisfies: corrupt bound kind");
}

bool EngineSession::satisfies(std::string_view property_text) {
  return satisfies(parse_property(property_text));
}

std::vector<double> EngineSession::check_all(std::span<const Property> properties) {
  if (properties.empty()) return {};
  Stages& stages = prepare();  // one compile/explore serves the whole batch

  // Pre-build the shared lazy stages serially: under the parallel fan-out the
  // first solver to need them would build them while its peers block on
  // lazy_mutex, wasting the pool.
  if (!stages.space->is_mdp()) {  // mdp solves have no shared lazy stages
    bool needs_uniformized = false;
    bool needs_steady = false;
    for (const Property& p : properties) {
      switch (p.kind) {
        case PropertyKind::kCumulativeReward:
        case PropertyKind::kInstantaneousReward:
          needs_uniformized = true;
          break;
        case PropertyKind::kSteadyStateProb:
        case PropertyKind::kSteadyStateReward:
          needs_steady = true;
          break;
        default:
          break;
      }
    }
    if (needs_uniformized && stages.chain->max_exit_rate() > 0.0) {
      uniformized_of(stages);
    }
    if (needs_steady) steady_of(stages);
  }

  const auto start = std::chrono::steady_clock::now();
  util::metrics::ScopedSpan span("solve");
  std::vector<double> results(properties.size(), 0.0);
  if (!options_.parallel_properties || properties.size() == 1) {
    for (size_t i = 0; i < properties.size(); ++i) {
      results[i] = evaluate(stages, properties[i]);
    }
  } else {
    // Each slot writes only results[i]; evaluation order cannot change any
    // value, so the batch is deterministic at every thread count.
    util::parallel_for(0, properties.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        results[i] = evaluate(stages, properties[i]);
      }
    });
  }
  stats_.solve_seconds += seconds_since(start);
  return results;
}

std::vector<double> EngineSession::check_all(
    const std::vector<std::string>& property_texts) {
  std::vector<Property> properties;
  properties.reserve(property_texts.size());
  for (const std::string& text : property_texts) {
    properties.push_back(parse_property(text));
  }
  return check_all(std::span<const Property>(properties));
}

std::string EngineSession::checkpoint_key(const Stages& stages,
                                          const Property& property) const {
  // Stage identity folded into the key: if anything about exploration changed
  // between the interrupted run and the resume (model edit, engine fix), the
  // counts diverge, the key misses, and the value is recomputed — a stale
  // snapshot can degrade to recomputation but never replay a wrong answer.
  std::string key = active_key_;
  key += '\x1f';
  key += std::to_string(stages.space->state_count());
  key += ',';
  key += std::to_string(stages.space->transition_count());
  key += '\x1f';
  key += property.source;
  return key;
}

double EngineSession::evaluate(Stages& stages, const Property& property) {
  check_cancel("solve");
  if (util::fault::triggered("solve.cancel")) throw util::Cancelled("solve");
  if (util::fault::triggered("solve.hang")) {
    // Deterministic hang: spin without crossing another safepoint, so the
    // watchdog sees a stalled progress epoch. Only a SIGKILL ends it — the
    // injection site the serve watchdog leg is built on.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  util::metrics::registry().add("session.properties");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.check_count += 1;
  }
  CheckpointLedger* const ledger = options_.checkpoint.get();
  if (ledger == nullptr) return evaluate_fresh(stages, property);
  const std::string key = checkpoint_key(stages, property);
  if (double recorded = 0.0; ledger->lookup(key, &recorded)) {
    util::metrics::registry().add("session.checkpoint_hits");
    return recorded;  // bit-exact replay of the interrupted run's solve
  }
  const double value = evaluate_fresh(stages, property);
  ledger->record(key, value);
  return value;
}

double EngineSession::evaluate_fresh(Stages& stages, const Property& property) {
  if (stages.space->is_mdp()) return evaluate_mdp(stages, property, nullptr);
  if (property.direction != OptDirection::kNone) {
    throw PropertyError(
        "directional operators (Pmax/Pmin/Rmax/Rmin) require an mdp model; "
        "this model is a ctmc: " +
        property.source);
  }
  switch (property.kind) {
    case PropertyKind::kProbUntil: return check_until(stages, property);
    case PropertyKind::kProbGlobally: return check_globally(stages, property);
    case PropertyKind::kSteadyStateProb: return check_steady_prob(stages, property);
    case PropertyKind::kCumulativeReward:
    case PropertyKind::kInstantaneousReward:
    case PropertyKind::kSteadyStateReward:
    case PropertyKind::kReachabilityReward: return check_reward(stages, property);
  }
  throw PropertyError("corrupt property kind");
}

std::vector<double> EngineSession::reachability_probabilities(
    const ctmc::Ctmc& chain, const std::vector<bool>& target) {
  // Prob0/Prob1 graph precomputation first: states that cannot reach the
  // target are exactly 0, states that reach it almost surely are exactly 1.
  // Only the genuinely uncertain states go through the numeric least-fixpoint
  // x = A·x + b on the embedded DTMC (b = one-step probability into the
  // certain set). Besides making the 0/1 answers exact, this strips every
  // recurrent class out of the linear system — BSCC states are always
  // classified — so the iterative solvers never see the near-1 eigenmodes of
  // an almost-closed recurrent set.
  const size_t n = chain.state_count();
  const ctmc::ReachabilityClassification classes =
      ctmc::classify_reachability(chain.rates(), target);
  std::vector<double> x(n, 0.0);
  bool any_uncertain = false;
  for (size_t i = 0; i < n; ++i) {
    if (classes.certain[i]) {
      x[i] = 1.0;
    } else if (classes.possible[i]) {
      any_uncertain = true;
    }
  }
  if (!any_uncertain) return x;

  const linalg::CsrMatrix embedded = chain.embedded_dtmc();
  linalg::CsrBuilder block(n, n);
  std::vector<double> one_step(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (classes.certain[i] || !classes.possible[i]) continue;
    const auto cols = embedded.row_columns(i);
    const auto vals = embedded.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (classes.certain[cols[k]]) {
        one_step[i] += vals[k];
      } else if (classes.possible[cols[k]]) {
        // Diagonal entries stay in the block; solve_fixpoint folds A_ii < 1
        // into the update, and an uncertain state can never have A_ii = 1.
        block.add(i, cols[k], vals[k]);
      }
      // Successors in the Prob0 set contribute nothing.
    }
  }
  auto solved = linalg::solve_fixpoint(std::move(block).build(), one_step,
                                       steady_state_options().solver);
  if (solved.cancelled) throw util::Cancelled("solve");
  if (solved.attempts.size() > 1) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.solver_fallbacks += solved.attempts.size() - 1;
  }
  if (!solved.converged) {
    util::FailureProgress progress;
    progress.iterations = solved.iterations;
    progress.residual = solved.final_delta;
    throw util::EngineFailure(
        util::FailureCode::kSolverDiverged, "solve",
        "reachability fixpoint failed on every solver rung (" +
            std::to_string(solved.attempts.size()) + " attempted)",
        progress);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!classes.certain[i] && classes.possible[i]) x[i] = solved.x[i];
  }
  return x;
}

double EngineSession::check_until(Stages& stages, const Property& property) {
  const ctmc::Ctmc& chain = *stages.chain;
  const std::vector<double>& initial = stages.initial;
  const std::vector<bool> allowed = satisfying_in(stages, property.left);
  const std::vector<bool> target = satisfying_in(stages, property.right);

  if (property.has_time_lower_bound()) {
    // Interval until Φ U[t1,t2] Ψ (Baier et al.'s two-phase algorithm):
    // phase 1 evolves to t1 on the chain with ¬Φ absorbing — any path that
    // leaves Φ before t1 can no longer satisfy the formula — then the mass
    // still inside Φ runs a plain bounded until for the remaining t2-t1.
    const Expr lower_resolved = resolve_formula(stages, property.time_lower_bound);
    symbolic::Value lower_value;
    if (!lower_resolved.as_literal(lower_value) || !lower_value.is_numeric()) {
      throw PropertyError("interval lower bound does not fold to a number: " +
                          property.source);
    }
    const double t1 = lower_value.as_number();
    const double t2 = time_bound_in(stages, property);
    if (t1 < 0.0 || t2 < t1) {
      throw PropertyError("invalid time interval in: " + property.source);
    }
    const size_t n = chain.state_count();
    std::vector<bool> not_allowed(n, false);
    for (size_t i = 0; i < n; ++i) not_allowed[i] = !allowed[i];
    const ctmc::Ctmc phase1 = chain.with_absorbing(not_allowed);
    std::vector<double> at_t1 = ctmc::transient_distribution(
        phase1, initial, t1, transient_options());
    for (size_t i = 0; i < n; ++i) {
      if (!allowed[i]) at_t1[i] = 0.0;  // left Φ before t1: failed
    }
    return ctmc::bounded_reachability(chain, at_t1, allowed, target, t2 - t1,
                                      transient_options());
  }

  if (property.has_time_bound()) {
    return ctmc::bounded_reachability(chain, initial, allowed, target,
                                      time_bound_in(stages, property),
                                      transient_options());
  }
  // Unbounded until: restrict to the allowed region by making forbidden
  // states absorbing (they can never contribute), then take unbounded
  // reachability of the target.
  const size_t n = chain.state_count();
  std::vector<bool> absorbing(n, false);
  bool any_forbidden = false;
  for (size_t i = 0; i < n; ++i) {
    absorbing[i] = !allowed[i] && !target[i];
    any_forbidden = any_forbidden || absorbing[i];
  }
  const std::vector<double> reach =
      any_forbidden
          ? reachability_probabilities(chain.with_absorbing(absorbing), target)
          : reachability_probabilities(chain, target);
  return linalg::dot(initial, reach);
}

double EngineSession::check_globally(Stages& stages, const Property& property) {
  // P[G phi] = 1 − P[F !phi] (with the same bound).
  Property dual;
  dual.kind = PropertyKind::kProbUntil;
  dual.left = Expr::literal(true);
  dual.right = !property.right;
  dual.time_bound = property.time_bound;
  dual.time_lower_bound = property.time_lower_bound;
  dual.source = property.source;
  return 1.0 - check_until(stages, dual);
}

double EngineSession::check_steady_prob(Stages& stages, const Property& property) {
  const std::vector<bool> target = satisfying_in(stages, property.right);
  // The long-run distribution is a per-stage-set cache: every S=? property of
  // the session reuses one BSCC decomposition and one set of solves.
  const ctmc::SteadyStateResult& result = steady_of(stages);
  double acc = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    if (target[i]) acc += result.distribution[i];
  }
  return acc;
}

double EngineSession::check_reward(Stages& stages, const Property& property) {
  const ctmc::Ctmc& chain = *stages.chain;
  const std::vector<double>& initial = stages.initial;
  const std::vector<double> rewards =
      stages.space->reward_vector(property.reward_name);
  switch (property.kind) {
    case PropertyKind::kCumulativeReward: {
      const double t = time_bound_in(stages, property);
      if (chain.max_exit_rate() == 0.0) {
        return ctmc::expected_cumulative_reward(chain, initial, rewards, t,
                                                transient_options());
      }
      // Base-chain accumulation reuses the session's uniformization stage, so
      // repeated horizons skip the uniformize + transpose work.
      return ctmc::expected_cumulative_reward(uniformized_of(stages), initial,
                                              rewards, t,
                                              transient_options());
    }
    case PropertyKind::kInstantaneousReward: {
      const double t = time_bound_in(stages, property);
      if (chain.max_exit_rate() == 0.0 || t == 0.0) {
        return linalg::dot(initial, rewards);
      }
      const std::vector<double> dist = ctmc::transient_distribution(
          uniformized_of(stages), initial, t, transient_options());
      return linalg::dot(dist, rewards);
    }
    case PropertyKind::kSteadyStateReward:
      return linalg::dot(steady_of(stages).distribution, rewards);
    case PropertyKind::kReachabilityReward: {
      const std::vector<bool> target = satisfying_in(stages, property.right);
      // PRISM convention: the expected reward is infinite when the target is
      // missed with positive probability. The Prob1 set is a graph
      // precomputation, so the finite/infinite classification is exact — no
      // numeric reach-probability threshold.
      const std::vector<bool> certain =
          ctmc::almost_sure_reachability(chain.rates(), target);
      const size_t n = chain.state_count();
      for (size_t i = 0; i < n; ++i) {
        if (initial[i] > 0.0 && !certain[i]) {
          return std::numeric_limits<double>::infinity();
        }
      }
      // e_i = 0 on target; otherwise e_i = r_i / E_i + Σ_j P_ij e_j. The
      // system is restricted to the Prob1 states: anything outside carries
      // infinite expected reward, and including it would make the transient
      // block singular (an absorbing non-target state) or near-singular.
      // Successors of non-target Prob1 states are again Prob1 or target, so
      // the restricted system is closed; Prob1 also guarantees exit > 0.
      const linalg::CsrMatrix embedded = chain.embedded_dtmc();
      linalg::CsrBuilder block(n, n);
      std::vector<double> base(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        if (target[i] || !certain[i]) continue;
        base[i] = rewards[i] / chain.exit_rate(i);
        const auto cols = embedded.row_columns(i);
        const auto vals = embedded.row_values(i);
        for (size_t k = 0; k < cols.size(); ++k) {
          if (!target[cols[k]]) block.add(i, cols[k], vals[k]);
        }
      }
      auto solved = linalg::solve_fixpoint(std::move(block).build(), base,
                                           steady_state_options().solver);
      if (solved.cancelled) throw util::Cancelled("solve");
      if (solved.attempts.size() > 1) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.solver_fallbacks += solved.attempts.size() - 1;
      }
      if (!solved.converged) {
        util::FailureProgress progress;
        progress.iterations = solved.iterations;
        progress.residual = solved.final_delta;
        throw util::EngineFailure(
            util::FailureCode::kSolverDiverged, "solve",
            "reachability reward fixpoint failed on every solver rung (" +
                std::to_string(solved.attempts.size()) + " attempted)",
            progress);
      }
      return linalg::dot(initial, solved.x);
    }
    default:
      throw PropertyError("check_reward: not a reward property");
  }
}

// --- MDP axis -------------------------------------------------------------

/// The reachability query an mdp until/eventually denotes. `query` points at
/// the space's base MDP when no state is forbidden, at `absorbed` otherwise;
/// exported strategy rows index the query MDP, and the re-check path rebuilds
/// it from the same property so the indices line up.
struct EngineSession::MdpReachQuery {
  std::shared_ptr<const mdp::Mdp> base;
  std::optional<mdp::Mdp> absorbed;
  const mdp::Mdp* query = nullptr;
  std::vector<bool> target;
  bool bounded = false;
  size_t steps = 0;
};

mdp::ViOptions EngineSession::mdp_vi_options(bool interval) const {
  mdp::ViOptions options;
  options.interval = interval;
  // Interval iteration brackets the true value within epsilon, so the
  // reported midpoint is within epsilon/2 — comfortably inside the 1e-8
  // agreement the induced-chain cross-check asserts.
  options.epsilon = 1e-10;
  options.cancelled = poll_hook(options_.cancel);
  return options;
}

size_t EngineSession::mdp_steps(Stages& stages, const Property& property) {
  const double t = time_bound_in(stages, property);
  const double rounded = std::nearbyint(t);
  if (std::abs(t - rounded) > 1e-9 || rounded < 0.0 || rounded > 1e15) {
    throw PropertyError(
        "mdp time bounds count discrete steps and must be non-negative "
        "integers: " +
        property.source);
  }
  return static_cast<size_t>(rounded);
}

EngineSession::MdpReachQuery EngineSession::mdp_reach_query(
    Stages& stages, const Property& property) {
  if (property.has_time_lower_bound()) {
    throw PropertyError(
        "interval-bounded until is not supported for mdp models: " +
        property.source);
  }
  MdpReachQuery q;
  q.base = stages.space->mdp_ptr();
  q.target = satisfying_in(stages, property.right);
  const std::vector<bool> allowed = satisfying_in(stages, property.left);
  const size_t n = q.base->state_count();
  std::vector<bool> forbidden(n, false);
  bool any_forbidden = false;
  for (size_t i = 0; i < n; ++i) {
    forbidden[i] = !allowed[i] && !q.target[i];
    any_forbidden = any_forbidden || forbidden[i];
  }
  if (any_forbidden) {
    // Restrict to the allowed region exactly as the ctmc path does: forbidden
    // states become absorbing, so no path through them can reach the target.
    q.absorbed = q.base->with_absorbing(forbidden);
    q.query = &*q.absorbed;
  } else {
    q.query = q.base.get();
  }
  if (property.has_time_bound()) {
    q.bounded = true;
    q.steps = mdp_steps(stages, property);
  }
  return q;
}

double EngineSession::mdp_until(Stages& stages, const Property& property,
                                bool maximize, StrategyExport* strategy_out) {
  MdpReachQuery q = mdp_reach_query(stages, property);
  const size_t initial = stages.space->initial_state();

  if (q.bounded) {
    const mdp::BoundedViResult result = mdp::bounded_reachability(
        *q.query, q.target, q.steps, maximize, mdp_vi_options(false));
    const double value = result.values[initial];
    if (strategy_out != nullptr) {
      strategy_out->bounded = true;
      strategy_out->schedule = result.schedule;
      strategy_out->value = value;
      strategy_out->induced_value = mdp::induced_bounded_reachability(
          *q.query, result.schedule, q.target, initial);
      strategy_out->property = property.source;
      strategy_out->direction = maximize ? "max" : "min";
    }
    return value;
  }

  // Unbounded: interval iteration, so convergence is sound (plain value
  // iteration's step criterion can stop early on slowly-mixing models).
  const mdp::ViResult result =
      mdp::reachability(*q.query, q.target, maximize, mdp_vi_options(true));
  if (result.cancelled) throw util::Cancelled("solve");
  if (!result.converged) {
    util::FailureProgress progress;
    progress.iterations = result.iterations;
    progress.residual = result.residual;
    throw util::EngineFailure(util::FailureCode::kSolverDiverged, "solve",
                              "mdp value iteration did not converge within " +
                                  std::to_string(result.iterations) + " sweeps",
                              progress);
  }
  const double value = result.values[initial];
  if (strategy_out != nullptr) {
    strategy_out->bounded = false;
    strategy_out->rows = mdp::extract_reachability_strategy(
        *q.query, q.target, result, maximize, /*tolerance=*/1e-8);
    strategy_out->value = value;
    const std::vector<double> induced = mdp::induced_reachability(
        mdp::induced_chain(*q.query, strategy_out->rows), q.target);
    strategy_out->induced_value = induced[initial];
    strategy_out->property = property.source;
    strategy_out->direction = maximize ? "max" : "min";
  }
  return value;
}

double EngineSession::mdp_reward(Stages& stages, const Property& property,
                                 bool maximize) {
  const mdp::Mdp& model = stages.space->mdp();
  const size_t initial = stages.space->initial_state();
  const std::vector<double> rewards =
      stages.space->reward_vector(property.reward_name);
  switch (property.kind) {
    case PropertyKind::kCumulativeReward:
      return mdp::bounded_cumulative_reward(model, rewards,
                                            mdp_steps(stages, property),
                                            maximize, mdp_vi_options(false))
          .values[initial];
    case PropertyKind::kInstantaneousReward:
      return mdp::instantaneous_reward(model, rewards,
                                       mdp_steps(stages, property), maximize,
                                       mdp_vi_options(false))
          .values[initial];
    case PropertyKind::kReachabilityReward: {
      const std::vector<bool> target = satisfying_in(stages, property.right);
      const mdp::ViResult result = mdp::reachability_reward(
          model, target, rewards, maximize, mdp_vi_options(false));
      if (result.cancelled) throw util::Cancelled("solve");
      if (!result.converged) {
        util::FailureProgress progress;
        progress.iterations = result.iterations;
        progress.residual = result.residual;
        throw util::EngineFailure(
            util::FailureCode::kSolverDiverged, "solve",
            "mdp reward iteration did not converge within " +
                std::to_string(result.iterations) + " sweeps",
            progress);
      }
      return result.values[initial];
    }
    default:
      throw PropertyError("mdp_reward: not a reward property");
  }
}

double EngineSession::evaluate_mdp(Stages& stages, const Property& property,
                                   StrategyExport* strategy_out) {
  if (property.direction == OptDirection::kNone) {
    throw PropertyError(
        "an mdp model requires a directional operator (Pmax/Pmin/Rmax/Rmin) "
        "to resolve the nondeterministic choices: " +
        property.source);
  }
  const bool maximize = property.direction == OptDirection::kMax;
  switch (property.kind) {
    case PropertyKind::kProbUntil:
      return mdp_until(stages, property, maximize, strategy_out);
    case PropertyKind::kProbGlobally: {
      // Pmax[G φ] = 1 − Pmin[F ¬φ] (and dually): the optimizing adversary of
      // a safety objective is the pessimizing adversary of its complement.
      Property dual;
      dual.kind = PropertyKind::kProbUntil;
      dual.direction =
          maximize ? OptDirection::kMin : OptDirection::kMax;
      dual.left = Expr::literal(true);
      dual.right = !property.right;
      dual.time_bound = property.time_bound;
      dual.time_lower_bound = property.time_lower_bound;
      dual.source = property.source;
      return 1.0 - mdp_until(stages, dual, !maximize, strategy_out);
    }
    case PropertyKind::kSteadyStateProb:
    case PropertyKind::kSteadyStateReward:
      throw PropertyError(
          "steady-state operators are not supported for mdp models (the "
          "long-run distribution depends on the scheduler): " +
          property.source);
    case PropertyKind::kCumulativeReward:
    case PropertyKind::kInstantaneousReward:
    case PropertyKind::kReachabilityReward:
      return mdp_reward(stages, property, maximize);
  }
  throw PropertyError("corrupt property kind");
}

StrategyCheck EngineSession::check_with_strategy(const Property& property) {
  Stages& stages = prepare();
  if (!stages.space->is_mdp()) {
    throw PropertyError(
        "check_with_strategy requires an mdp model; a ctmc has no scheduler "
        "to export");
  }
  if (property.kind != PropertyKind::kProbUntil) {
    throw PropertyError(
        "strategy export supports probabilistic until/eventually "
        "(Pmax/Pmin [ ... U ... ] / [ F ... ]) only: " +
        property.source);
  }
  check_cancel("solve");
  if (util::fault::triggered("solve.cancel")) throw util::Cancelled("solve");
  util::metrics::registry().add("session.properties");
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.check_count += 1;
  }
  const auto start = std::chrono::steady_clock::now();
  StrategyCheck out;
  {
    util::metrics::ScopedSpan span("solve");
    const bool maximize = [&] {
      if (property.direction == OptDirection::kNone) {
        throw PropertyError(
            "an mdp model requires a directional operator (Pmax/Pmin) to "
            "resolve the nondeterministic choices: " +
            property.source);
      }
      return property.direction == OptDirection::kMax;
    }();
    out.value = mdp_until(stages, property, maximize, &out.strategy);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.solve_seconds += seconds_since(start);
  }
  return out;
}

StrategyCheck EngineSession::check_with_strategy(std::string_view property_text) {
  return check_with_strategy(parse_property(property_text));
}

double EngineSession::induced_value(const Property& property,
                                    const StrategyExport& strategy) {
  Stages& stages = prepare();
  if (!stages.space->is_mdp()) {
    throw PropertyError("induced_value requires an mdp model");
  }
  if (property.kind != PropertyKind::kProbUntil) {
    throw PropertyError(
        "induced_value supports probabilistic until/eventually only: " +
        property.source);
  }
  MdpReachQuery q = mdp_reach_query(stages, property);
  const size_t initial = stages.space->initial_state();
  const size_t n = q.query->state_count();
  if (strategy.bounded != q.bounded) {
    throw PropertyError(
        "strategy/property mismatch: one is step-bounded, the other is not");
  }
  if (strategy.bounded) {
    if (strategy.schedule.size() != q.steps ||
        (q.steps > 0 && strategy.schedule.front().size() != n)) {
      throw PropertyError(
          "strategy/property mismatch: schedule dimensions do not match the "
          "query (steps or state count differ)");
    }
    return mdp::induced_bounded_reachability(*q.query, strategy.schedule,
                                             q.target, initial);
  }
  if (strategy.rows.size() != n) {
    throw PropertyError(
        "strategy/property mismatch: rows cover " +
        std::to_string(strategy.rows.size()) + " states, the query has " +
        std::to_string(n));
  }
  const std::vector<double> induced = mdp::induced_reachability(
      mdp::induced_chain(*q.query, strategy.rows), q.target);
  return induced[initial];
}

util::JsonValue EngineSession::strategy_document(const Property& property,
                                                 const StrategyExport& strategy) {
  Stages& stages = prepare();
  if (!stages.space->is_mdp()) {
    throw PropertyError("strategy_document requires an mdp model");
  }
  MdpReachQuery q = mdp_reach_query(stages, property);
  return strategy_json_value(strategy, *stages.space, *q.query, q.target);
}

}  // namespace autosec::csl
