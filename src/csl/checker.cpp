#include "csl/checker.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "csl/property_parser.hpp"
#include "ctmc/rewards.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/vector_ops.hpp"

namespace autosec::csl {

using symbolic::Expr;

Checker::Checker(const symbolic::StateSpace& space, CheckerOptions options)
    : space_(&space),
      options_(options),
      chain_(space.to_ctmc()),
      initial_(space.initial_distribution()) {}

Expr Checker::resolve_formula(const Expr& formula) const {
  // Labels are exposed to the resolver as pre-resolved formulas named
  // "label:<name>" — matching the encoding the expression parser emits for
  // quoted atoms.
  std::vector<std::pair<std::string, Expr>> label_formulas;
  for (const symbolic::CompiledLabel& label : space_->model().labels) {
    label_formulas.emplace_back("label:" + label.name, label.condition);
  }
  std::vector<std::string> variable_names;
  for (const symbolic::CompiledVariable& v : space_->model().variables) {
    variable_names.push_back(v.name);
  }
  const symbolic::SymbolScope scope{
      .constants = &space_->model().constant_values,
      .formulas = &label_formulas,
      .variables = &variable_names,
  };
  try {
    return formula.resolve(scope);
  } catch (const symbolic::EvalError& e) {
    throw PropertyError(std::string("state formula: ") + e.what());
  }
}

std::vector<bool> Checker::satisfying(const Expr& formula) const {
  return space_->satisfying(resolve_formula(formula));
}

double Checker::time_bound_value(const Property& property) const {
  if (!property.has_time_bound()) {
    throw PropertyError("property requires a time bound: " + property.source);
  }
  const Expr resolved = resolve_formula(property.time_bound);
  symbolic::Value value;
  if (!resolved.as_literal(value) || !value.is_numeric()) {
    throw PropertyError("time bound does not fold to a number: " + property.source);
  }
  const double t = value.as_number();
  if (!(t >= 0.0)) throw PropertyError("negative time bound: " + property.source);
  return t;
}

double Checker::check(const Property& property) const {
  switch (property.kind) {
    case PropertyKind::kProbUntil: return check_until(property);
    case PropertyKind::kProbGlobally: return check_globally(property);
    case PropertyKind::kSteadyStateProb: return check_steady_prob(property);
    case PropertyKind::kCumulativeReward:
    case PropertyKind::kInstantaneousReward:
    case PropertyKind::kSteadyStateReward:
    case PropertyKind::kReachabilityReward: return check_reward(property);
  }
  throw PropertyError("corrupt property kind");
}

double Checker::check(std::string_view property_text) const {
  return check(parse_property(property_text));
}

bool Checker::satisfies(const Property& property) const {
  if (property.is_query()) {
    throw PropertyError("satisfies: property is a =? query: " + property.source);
  }
  const Expr resolved = resolve_formula(property.bound_value);
  symbolic::Value bound;
  if (!resolved.as_literal(bound) || !bound.is_numeric()) {
    throw PropertyError("satisfies: bound does not fold to a number: " +
                        property.source);
  }
  const double value = check(property);
  const double threshold = bound.as_number();
  switch (property.bound) {
    case BoundKind::kLt: return value < threshold;
    case BoundKind::kLe: return value <= threshold;
    case BoundKind::kGt: return value > threshold;
    case BoundKind::kGe: return value >= threshold;
    case BoundKind::kQuery: break;
  }
  throw PropertyError("satisfies: corrupt bound kind");
}

bool Checker::satisfies(std::string_view property_text) const {
  return satisfies(parse_property(property_text));
}

std::vector<double> Checker::reachability_probabilities(
    const std::vector<bool>& target) const {
  // Least fixpoint x = A·x + b on the embedded DTMC: x_i = 1 on target
  // states; for others, b is the one-step probability into the target.
  const size_t n = chain_.state_count();
  const linalg::CsrMatrix embedded = chain_.embedded_dtmc();

  linalg::CsrBuilder block(n, n);
  std::vector<double> one_step(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (target[i]) continue;
    const auto cols = embedded.row_columns(i);
    const auto vals = embedded.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (target[cols[k]]) {
        one_step[i] += vals[k];
      } else if (cols[k] != i) {
        block.add(i, cols[k], vals[k]);
      }
      // Self-loops of non-target states contribute nothing to the least
      // fixpoint and are dropped (keeps absorbing states at x = 0).
    }
  }
  auto solved = linalg::solve_fixpoint(std::move(block).build(), one_step,
                                       options_.steady_state.solver);
  if (!solved.converged) {
    throw PropertyError("reachability fixpoint did not converge");
  }
  std::vector<double> x = std::move(solved.x);
  for (size_t i = 0; i < n; ++i) {
    if (target[i]) x[i] = 1.0;
  }
  return x;
}

double Checker::check_until(const Property& property) const {
  const std::vector<bool> allowed = satisfying(property.left);
  const std::vector<bool> target = satisfying(property.right);

  if (property.has_time_lower_bound()) {
    // Interval until Φ U[t1,t2] Ψ (Baier et al.'s two-phase algorithm):
    // phase 1 evolves to t1 on the chain with ¬Φ absorbing — any path that
    // leaves Φ before t1 can no longer satisfy the formula — then the mass
    // still inside Φ runs a plain bounded until for the remaining t2-t1.
    const Expr lower_resolved = resolve_formula(property.time_lower_bound);
    symbolic::Value lower_value;
    if (!lower_resolved.as_literal(lower_value) || !lower_value.is_numeric()) {
      throw PropertyError("interval lower bound does not fold to a number: " +
                          property.source);
    }
    const double t1 = lower_value.as_number();
    const double t2 = time_bound_value(property);
    if (t1 < 0.0 || t2 < t1) {
      throw PropertyError("invalid time interval in: " + property.source);
    }
    const size_t n = chain_.state_count();
    std::vector<bool> not_allowed(n, false);
    for (size_t i = 0; i < n; ++i) not_allowed[i] = !allowed[i];
    const ctmc::Ctmc phase1 = chain_.with_absorbing(not_allowed);
    std::vector<double> at_t1 =
        ctmc::transient_distribution(phase1, initial_, t1, options_.transient);
    for (size_t i = 0; i < n; ++i) {
      if (!allowed[i]) at_t1[i] = 0.0;  // left Φ before t1: failed
    }
    return ctmc::bounded_reachability(chain_, at_t1, allowed, target, t2 - t1,
                                      options_.transient);
  }

  if (property.has_time_bound()) {
    return ctmc::bounded_reachability(chain_, initial_, allowed, target,
                                      time_bound_value(property), options_.transient);
  }
  // Unbounded until: restrict to the allowed region by making forbidden
  // states absorbing (they can never contribute), then take unbounded
  // reachability of the target.
  const size_t n = chain_.state_count();
  std::vector<bool> absorbing(n, false);
  bool any_forbidden = false;
  for (size_t i = 0; i < n; ++i) {
    absorbing[i] = !allowed[i] && !target[i];
    any_forbidden = any_forbidden || absorbing[i];
  }
  Checker restricted = *this;
  if (any_forbidden) restricted.chain_ = chain_.with_absorbing(absorbing);
  const std::vector<double> reach = restricted.reachability_probabilities(target);
  return linalg::dot(initial_, reach);
}

double Checker::check_globally(const Property& property) const {
  // P[G phi] = 1 − P[F !phi] (with the same bound).
  Property dual;
  dual.kind = PropertyKind::kProbUntil;
  dual.left = Expr::literal(true);
  dual.right = !property.right;
  dual.time_bound = property.time_bound;
  dual.time_lower_bound = property.time_lower_bound;
  dual.source = property.source;
  return 1.0 - check_until(dual);
}

double Checker::check_steady_prob(const Property& property) const {
  const std::vector<bool> target = satisfying(property.right);
  const ctmc::SteadyStateResult result =
      ctmc::steady_state(chain_, initial_, options_.steady_state);
  double acc = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    if (target[i]) acc += result.distribution[i];
  }
  return acc;
}

double Checker::check_reward(const Property& property) const {
  const std::vector<double> rewards = space_->reward_vector(property.reward_name);
  switch (property.kind) {
    case PropertyKind::kCumulativeReward:
      return ctmc::expected_cumulative_reward(chain_, initial_, rewards,
                                              time_bound_value(property),
                                              options_.transient);
    case PropertyKind::kInstantaneousReward:
      return ctmc::expected_instantaneous_reward(chain_, initial_, rewards,
                                                 time_bound_value(property),
                                                 options_.transient);
    case PropertyKind::kSteadyStateReward:
      return ctmc::steady_state_reward(chain_, initial_, rewards,
                                       options_.steady_state);
    case PropertyKind::kReachabilityReward: {
      const std::vector<bool> target = satisfying(property.right);
      const std::vector<double> reach = reachability_probabilities(target);
      const double reach_from_init = linalg::dot(initial_, reach);
      if (reach_from_init < 1.0 - 1e-9) {
        // PRISM convention: expected reward is infinite when the target is
        // missed with positive probability.
        return std::numeric_limits<double>::infinity();
      }
      // e_i = 0 on target; otherwise e_i = r_i / E_i + Σ_j P_ij e_j.
      const size_t n = chain_.state_count();
      const linalg::CsrMatrix embedded = chain_.embedded_dtmc();
      linalg::CsrBuilder block(n, n);
      std::vector<double> base(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        if (target[i]) continue;
        const double exit = chain_.exit_rate(i);
        if (exit <= 0.0) {
          throw PropertyError(
              "reachability reward: absorbing non-target state reached");
        }
        base[i] = rewards[i] / exit;
        const auto cols = embedded.row_columns(i);
        const auto vals = embedded.row_values(i);
        for (size_t k = 0; k < cols.size(); ++k) {
          if (!target[cols[k]]) block.add(i, cols[k], vals[k]);
        }
      }
      auto solved = linalg::solve_fixpoint(std::move(block).build(), base,
                                           options_.steady_state.solver);
      if (!solved.converged) {
        throw PropertyError("reachability reward fixpoint did not converge");
      }
      return linalg::dot(initial_, solved.x);
    }
    default:
      throw PropertyError("check_reward: not a reward property");
  }
}

}  // namespace autosec::csl
