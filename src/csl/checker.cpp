#include "csl/checker.hpp"

#include "csl/session.hpp"

namespace autosec::csl {

namespace {

SessionOptions session_options(const CheckerOptions& options) {
  SessionOptions session;
  static_cast<EngineOptions&>(session) = options;
  return session;
}

}  // namespace

Checker::Checker(std::shared_ptr<const symbolic::StateSpace> space,
                 CheckerOptions options)
    : session_(std::make_shared<EngineSession>(std::move(space),
                                               session_options(options))) {}

Checker::Checker(std::shared_ptr<EngineSession> session)
    : session_(std::move(session)) {
  if (!session_) throw PropertyError("Checker: null session");
}

Checker::~Checker() = default;

double Checker::check(const Property& property) const {
  return session_->check(property);
}

double Checker::check(std::string_view property_text) const {
  return session_->check(property_text);
}

bool Checker::satisfies(const Property& property) const {
  return session_->satisfies(property);
}

bool Checker::satisfies(std::string_view property_text) const {
  return session_->satisfies(property_text);
}

std::vector<bool> Checker::satisfying(const symbolic::Expr& formula) const {
  return session_->satisfying(formula);
}

double Checker::time_bound_value(const Property& property) const {
  return session_->time_bound_value(property);
}

const symbolic::StateSpace& Checker::space() const { return session_->space(); }

const ctmc::Ctmc& Checker::chain() const { return session_->chain(); }

}  // namespace autosec::csl
