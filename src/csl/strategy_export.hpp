// Strategy export: the optimizing scheduler of an MDP query serialized as a
// machine-readable JSON document plus a human-readable attack path. This is
// the counterexample artifact of the nondeterministic-attacker analysis — the
// state→action trace a worst-case adversary walks — and it round-trips: the
// parsed document can be re-checked by inducing its Markov chain and solving
// that chain as a plain stochastic model, independently of value iteration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mdp/mdp.hpp"
#include "symbolic/explorer.hpp"
#include "util/json.hpp"

namespace autosec::csl {

/// An exported scheduler for one reachability property. Unbounded queries
/// carry a memoryless map (`rows`, one chosen flattened row per state, -1 =
/// choice irrelevant); step-bounded queries carry a time-dependent schedule
/// (`schedule[t][s]`, the row after t elapsed steps). Row indices refer to
/// the query MDP — the explored model with the property's forbidden states
/// absorbed — which the re-check path reconstructs from the same property.
struct StrategyExport {
  bool bounded = false;
  std::vector<int32_t> rows;
  std::vector<std::vector<int32_t>> schedule;
  /// Value reported by the engine (value iteration).
  double value = 0.0;
  /// Value of the induced chain, re-checked independently.
  double induced_value = 0.0;
  std::string property;   ///< source text of the property
  std::string direction;  ///< "max" | "min"
};

/// A directional check together with its exported scheduler.
struct StrategyCheck {
  double value = 0.0;
  StrategyExport strategy;
};

/// The version-1 document as a JSON tree: machine-readable core (rows or
/// schedule, values, direction) plus action labels, state valuations, and the
/// most-probable attack path from the initial state. The serve layer embeds
/// this tree in check envelopes; write_strategy_json dumps it to text.
util::JsonValue strategy_json_value(const StrategyExport& strategy,
                                    const symbolic::StateSpace& space,
                                    const mdp::Mdp& query_mdp,
                                    const std::vector<bool>& target);

/// Serialize with action labels, state valuations, and the most-probable
/// attack path from the initial state (version-1 schema).
std::string write_strategy_json(const StrategyExport& strategy,
                                const symbolic::StateSpace& space,
                                const mdp::Mdp& query_mdp,
                                const std::vector<bool>& target);

/// Parse the machine-readable core (rows/schedule/values/direction) back.
/// Throws csl::PropertyError on a malformed or wrong-version document.
StrategyExport parse_strategy_json(std::string_view text);

}  // namespace autosec::csl
