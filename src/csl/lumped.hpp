// Lumped (quotient-space) property checking — the "targeted model checker"
// of the paper's Section 5: before running the numerical engine, the state
// space is reduced by ordinary lumping w.r.t. exactly the observations the
// property needs (its state formulas, its reward structure, and the initial
// state). The quotient result is exact, so this is a pure performance
// optimization; bench_ablation_lumping quantifies the reduction on the
// case-study models.
#pragma once

#include <string_view>

#include "csl/checker.hpp"
#include "ctmc/lumping.hpp"

namespace autosec::csl {

struct LumpedCheckResult {
  double value = 0.0;
  size_t original_states = 0;
  size_t lumped_states = 0;
  double reduction_factor() const {
    return lumped_states == 0 ? 1.0
                              : static_cast<double>(original_states) /
                                    static_cast<double>(lumped_states);
  }
};

/// Check `property` on the ordinary-lumping quotient of the state space.
/// Equal to Checker(space).check(property) up to solver tolerances.
LumpedCheckResult check_lumped(const symbolic::StateSpace& space,
                               const Property& property,
                               const CheckerOptions& options = {});

LumpedCheckResult check_lumped(const symbolic::StateSpace& space,
                               std::string_view property_text,
                               const CheckerOptions& options = {});

}  // namespace autosec::csl
