#include "csl/checkpoint.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace autosec::csl {

namespace {

constexpr const char* kHeader = "autosec-checkpoint-v1";

/// Local FNV-1a: the ledger must not depend on the serving layer (which has
/// its own copy for cache filenames); 64 bits of identity is plenty for a
/// per-job snapshot name — the identity line inside the file closes the
/// collision loophole exactly like the disk cache's stored key does.
uint64_t fnv1a64(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string hex64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

uint64_t steady_ms() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

CheckpointLedger::CheckpointLedger(CheckpointOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec || !std::filesystem::is_directory(options_.dir)) {
    throw std::runtime_error("checkpoint: cannot create directory '" +
                             options_.dir + "'" + (ec ? ": " + ec.message() : ""));
  }
  path_ = options_.dir + "/" + hex64(fnv1a64(options_.identity)) + ".ckpt";
}

CheckpointLedger::~CheckpointLedger() {
  try {
    flush();
  } catch (...) {
    // Destructor persistence is best-effort; the next run recomputes.
  }
}

size_t CheckpointLedger::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;
  std::string header;
  std::string identity_line;
  std::string payload_line;
  std::string payload;
  const bool shape_ok = static_cast<bool>(std::getline(in, header)) &&
                        static_cast<bool>(std::getline(in, identity_line)) &&
                        static_cast<bool>(std::getline(in, payload_line)) &&
                        static_cast<bool>(std::getline(in, payload));
  in.close();
  bool valid = shape_ok && header == kHeader &&
               identity_line == "identity " + hex64(fnv1a64(options_.identity)) &&
               payload_line == "payload " + hex64(fnv1a64(payload));
  if (valid) {
    try {
      const util::JsonValue doc = util::JsonValue::parse(payload);
      const util::JsonValue* records = doc.find("records");
      if (records == nullptr || !records->is_object()) throw util::JsonError("no records", 0);
      std::map<std::string, uint64_t> loaded;
      for (const auto& [key, bits] : records->members()) {
        if (!bits.is_string() || bits.as_string().size() != 16) {
          throw util::JsonError("bad record bits", 0);
        }
        loaded.emplace(key, std::stoull(bits.as_string(), nullptr, 16));
      }
      records_ = std::move(loaded);
      loaded_records_ = records_.size();
      dirty_ = false;
      util::metrics::registry().add("checkpoint.loads");
      return records_.size();
    } catch (const std::exception&) {
      valid = false;
    }
  }
  // Truncated write, foreign file, or a stale identity: drop the snapshot
  // and resume cold — recomputation, never a wrong answer.
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  util::metrics::registry().add("checkpoint.corrupt");
  return 0;
}

bool CheckpointLedger::lookup(const std::string& key, double* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return false;
  if (value != nullptr) *value = std::bit_cast<double>(it->second);
  ++resumed_hits_;
  return true;
}

void CheckpointLedger::record(const std::string& key, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  const auto [it, inserted] = records_.emplace(key, bits);
  if (!inserted && it->second == bits) return;  // nothing new to persist
  it->second = bits;
  dirty_ = true;
  const uint64_t now = steady_ms();
  if (options_.interval_ms == 0 || last_persist_ms_ == 0 ||
      now - last_persist_ms_ >= options_.interval_ms) {
    persist_locked();
  }
}

void CheckpointLedger::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dirty_) persist_locked();
}

void CheckpointLedger::persist_locked() {
  util::JsonWriter writer(0);
  writer.begin_object();
  writer.key("records");
  writer.begin_object();
  for (const auto& [key, bits] : records_) {
    writer.key(key).value(hex64(bits));
  }
  writer.end_object();
  writer.end_object();
  const std::string payload = writer.take();

  const std::string temp = path_ + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable dir: stay dirty, retry on the next record
    out << kHeader << "\n"
        << "identity " << hex64(fnv1a64(options_.identity)) << "\n"
        << "payload " << hex64(fnv1a64(payload)) << "\n"
        << payload << "\n";
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path_, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return;
  }
  dirty_ = false;
  ++persists_;
  last_persist_ms_ = steady_ms();
  util::metrics::registry().add("checkpoint.persists");
}

size_t CheckpointLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

uint64_t CheckpointLedger::persists() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return persists_;
}

uint64_t CheckpointLedger::resumed_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resumed_hits_;
}

}  // namespace autosec::csl
