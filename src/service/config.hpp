// Hot-reloadable serve configuration. `autosec serve --config FILE` reads a
// JSON object of operational knobs at startup and re-reads it on SIGHUP
// (util::install_reload_signal); the new limits apply to a live server
// without dropping a connection or invalidating a cache entry. Every field
// is optional — an absent field keeps the value the command-line flags
// established, so the file only has to name what it wants to change:
//
//   {"max_inflight": 8, "max_load_mb": 2048, "log_level": "info"}
//
// Recognized fields (see docs/serving.md for the full reference):
//   max_inflight, max_load_mb      admission limits
//   max_connections                accept-loop cap
//   cache_capacity                 session-cache entries
//   disk_cache_mb                  disk-cache size quota (0 = unbounded)
//   checkpoint_interval_ms         min ms between checkpoint persists
//   default_timeout_ms             request timeout fallback (-1 = none)
//   max_batch                      request lines per parallel batch
//   watchdog_ms                    worker heartbeat deadline (sharded mode)
//   log_level                      trace|debug|info|warn|error|off
//
// A malformed file fails startup loudly; on a reload it is logged and the
// previous configuration stays in force — an operator typo must never take
// the fleet down. The sharded parent forwards the canonical form of the file
// to every worker (and to respawned workers) as a "!cfg" control frame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace autosec::service {

struct ServeConfig {
  std::optional<size_t> max_inflight;
  std::optional<size_t> max_load_mb;
  std::optional<size_t> max_connections;
  std::optional<size_t> cache_capacity;
  std::optional<size_t> disk_cache_mb;
  std::optional<uint64_t> checkpoint_interval_ms;
  std::optional<int64_t> default_timeout_ms;  ///< -1 clears the fallback
  std::optional<size_t> max_batch;
  std::optional<uint64_t> watchdog_ms;
  std::optional<std::string> log_level;

  /// Parse a config document. Throws std::runtime_error on malformed JSON,
  /// unknown fields, or out-of-range values — silence would mask typos.
  static ServeConfig parse(const std::string& json);

  /// Read and parse `path`. Throws std::runtime_error (file or parse).
  static ServeConfig from_file(const std::string& path);

  /// Canonical single-line JSON of the set fields: the "!cfg" frame payload
  /// and the `status` surface of the active configuration.
  std::string canonical() const;
};

}  // namespace autosec::service
