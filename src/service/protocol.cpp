#include "service/protocol.hpp"

#include <cmath>
#include <limits>

#include "util/json.hpp"

namespace autosec::service {

namespace {

using automotive::SecurityCategory;
using util::JsonValue;

/// Thrown internally while validating a request; converted to the
/// bad_request ErrorInfo of the ParseResult.
class BadRequest : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::string_view kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

std::string expect_string(const JsonValue& value, std::string_view key) {
  if (!value.is_string()) {
    throw BadRequest("field '" + std::string(key) + "' must be a string, got " +
                     std::string(kind_name(value.kind())));
  }
  return value.as_string();
}

double expect_number(const JsonValue& value, std::string_view key) {
  if (!value.is_number()) {
    throw BadRequest("field '" + std::string(key) + "' must be a number, got " +
                     std::string(kind_name(value.kind())));
  }
  return value.as_number();
}

int64_t expect_integer(const JsonValue& value, std::string_view key) {
  if (!value.is_integer()) {
    throw BadRequest("field '" + std::string(key) + "' must be an integer");
  }
  return value.as_integer();
}

std::vector<std::string> expect_string_array(const JsonValue& value,
                                             std::string_view key) {
  if (!value.is_array()) {
    throw BadRequest("field '" + std::string(key) + "' must be an array of strings");
  }
  std::vector<std::string> out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    out.push_back(expect_string(value.at(i), key));
  }
  return out;
}

SecurityCategory expect_category(const JsonValue& value, std::string_view key) {
  const std::string text = expect_string(value, key);
  const std::optional<SecurityCategory> category = parse_category_token(text);
  if (!category) {
    throw BadRequest("unknown category '" + text +
                     "' (confidentiality|integrity|availability)");
  }
  return *category;
}

}  // namespace

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kAnalyze: return "analyze";
    case Op::kCheck: return "check";
    case Op::kSweep: return "sweep";
    case Op::kDiagnose: return "diagnose";
    case Op::kStatus: return "status";
  }
  return "?";
}

std::optional<SecurityCategory> parse_category_token(std::string_view text) {
  if (text == "confidentiality") return SecurityCategory::kConfidentiality;
  if (text == "integrity") return SecurityCategory::kIntegrity;
  if (text == "availability") return SecurityCategory::kAvailability;
  return std::nullopt;
}

ParseResult parse_request(std::string_view line) {
  ParseResult result;
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const util::JsonError& error) {
    result.error = {"bad_request",
                    std::string("malformed JSON: ") + error.what(), ""};
    return result;
  }
  if (!doc.is_object()) {
    result.error = {"bad_request", "request must be a JSON object", ""};
    return result;
  }

  // Salvage id/op for the error envelope before strict validation.
  if (const JsonValue* id = doc.find("id"); id && id->is_string()) {
    result.id = id->as_string();
  }
  if (const JsonValue* op = doc.find("op"); op && op->is_string()) {
    result.op_text = op->as_string();
  }

  try {
    Request request;
    request.id = result.id;

    const JsonValue* op = doc.find("op");
    if (!op) throw BadRequest("missing required field 'op'");
    const std::string op_text = expect_string(*op, "op");
    if (op_text == "analyze") request.op = Op::kAnalyze;
    else if (op_text == "check") request.op = Op::kCheck;
    else if (op_text == "sweep") request.op = Op::kSweep;
    else if (op_text == "diagnose") request.op = Op::kDiagnose;
    else if (op_text == "status") request.op = Op::kStatus;
    else throw BadRequest("unknown op '" + op_text +
                          "' (analyze|check|sweep|diagnose|status)");

    for (const auto& [key, value] : doc.members()) {
      if (key == "op" || key == "id") {
        // already handled (id may be any string, op validated above)
      } else if (key == "architecture") {
        request.architecture = expect_string(value, key);
      } else if (key == "messages") {
        request.messages = expect_string_array(value, key);
      } else if (key == "categories") {
        if (!value.is_array()) {
          throw BadRequest("field 'categories' must be an array");
        }
        for (size_t i = 0; i < value.size(); ++i) {
          request.categories.push_back(expect_category(value.at(i), key));
        }
      } else if (key == "message") {
        request.message = expect_string(value, key);
      } else if (key == "category") {
        request.category = expect_category(value, key);
      } else if (key == "properties") {
        request.properties = expect_string_array(value, key);
      } else if (key == "constant") {
        request.constant = expect_string(value, key);
      } else if (key == "values") {
        if (!value.is_array()) {
          throw BadRequest("field 'values' must be an array of numbers");
        }
        for (size_t i = 0; i < value.size(); ++i) {
          request.values.push_back(expect_number(value.at(i), key));
        }
      } else if (key == "nmax") {
        const int64_t nmax = expect_integer(value, key);
        if (nmax < 1 || nmax > 16) throw BadRequest("nmax must be in [1, 16]");
        request.nmax = static_cast<int>(nmax);
      } else if (key == "horizon_years") {
        request.horizon_years = expect_number(value, key);
        if (!(request.horizon_years > 0.0) ||
            !std::isfinite(request.horizon_years)) {
          throw BadRequest("horizon_years must be a finite number > 0");
        }
      } else if (key == "overrides") {
        if (!value.is_object()) {
          throw BadRequest("field 'overrides' must be an object of numbers");
        }
        for (const auto& [name, constant] : value.members()) {
          request.overrides.emplace_back(
              name, symbolic::Value::of(expect_number(constant, key)));
        }
      } else if (key == "timeout_ms") {
        const int64_t timeout = expect_integer(value, key);
        if (timeout < 0) throw BadRequest("timeout_ms must be >= 0");
        request.timeout_ms = timeout;
      } else if (key == "max_states") {
        const int64_t max_states = expect_integer(value, key);
        if (max_states < 1) throw BadRequest("max_states must be >= 1");
        request.max_states = max_states;
      } else if (key == "max_memory_mb") {
        const int64_t max_memory = expect_integer(value, key);
        if (max_memory < 1) throw BadRequest("max_memory_mb must be >= 1");
        request.max_memory_mb = max_memory;
      } else if (key == "solver") {
        const std::string solver = expect_string(value, key);
        if (solver == "auto") request.solver = linalg::FixpointMethod::kAuto;
        else if (solver == "gauss_seidel") {
          request.solver = linalg::FixpointMethod::kGaussSeidel;
        } else if (solver == "krylov") {
          request.solver = linalg::FixpointMethod::kKrylov;
        } else {
          throw BadRequest("unknown solver '" + solver +
                           "' (auto|gauss_seidel|krylov)");
        }
      } else if (key == "engine") {
        const std::string engine = expect_string(value, key);
        const auto parsed = symbolic::parse_engine_token(engine);
        if (!parsed) {
          throw BadRequest("unknown engine '" + engine +
                           "' (auto|classic|compact)");
        }
        request.engine = *parsed;
      } else if (key == "layout") {
        const std::string layout = expect_string(value, key);
        const auto parsed = linalg::parse_layout_token(layout);
        if (!parsed) {
          throw BadRequest("unknown layout '" + layout + "' (auto|csr|blocked)");
        }
        request.layout = *parsed;
      } else if (key == "gs_ordering") {
        const std::string ordering = expect_string(value, key);
        const auto parsed = linalg::parse_gs_ordering_token(ordering);
        if (!parsed) {
          throw BadRequest("unknown gs_ordering '" + ordering +
                           "' (auto|direct|colored)");
        }
        request.gs_ordering = *parsed;
      } else if (key == "reorder") {
        const std::string reorder = expect_string(value, key);
        const auto parsed = linalg::parse_reorder_token(reorder);
        if (!parsed) {
          throw BadRequest("unknown reorder '" + reorder + "' (auto|off|rcm)");
        }
        request.reorder = *parsed;
      } else if (key == "steady_state_detection") {
        if (!value.is_bool()) {
          throw BadRequest("field 'steady_state_detection' must be a boolean");
        }
        request.steady_state_detection = value.as_bool();
      } else if (key == "model_type") {
        const std::string model_type = expect_string(value, key);
        const auto parsed = symbolic::parse_model_type_token(model_type);
        if (!parsed) {
          throw BadRequest("unknown model_type '" + model_type + "' (ctmc|mdp)");
        }
        request.model_type = *parsed;
      } else if (key == "strategy") {
        if (!value.is_bool()) {
          throw BadRequest("field 'strategy' must be a boolean");
        }
        request.strategy = value.as_bool();
      } else {
        throw BadRequest("unknown field '" + key + "'");
      }
    }

    // Per-op required fields.
    if (request.op != Op::kStatus && request.architecture.empty()) {
      throw BadRequest("op '" + std::string(op_name(request.op)) +
                       "' requires field 'architecture'");
    }
    if (request.op == Op::kCheck || request.op == Op::kSweep ||
        request.op == Op::kDiagnose) {
      if (request.message.empty()) {
        throw BadRequest("op '" + std::string(op_name(request.op)) +
                         "' requires field 'message'");
      }
    }
    if (request.op == Op::kCheck && request.properties.empty()) {
      throw BadRequest("op 'check' requires a non-empty 'properties' array");
    }
    if (request.strategy) {
      if (request.op != Op::kCheck) {
        throw BadRequest("field 'strategy' is only valid on op 'check'");
      }
      if (request.model_type != symbolic::ModelType::kMdp) {
        throw BadRequest(
            "field 'strategy' requires model_type 'mdp' (a ctmc has no "
            "scheduler to export)");
      }
    }
    if (request.model_type == symbolic::ModelType::kMdp &&
        request.op != Op::kCheck && request.op != Op::kStatus) {
      throw BadRequest(
          "op '" + std::string(op_name(request.op)) +
          "' supports model_type 'ctmc' only; use op 'check' with "
          "Pmax/Pmin properties for mdp models");
    }
    if (request.op == Op::kSweep) {
      if (request.constant.empty()) {
        throw BadRequest("op 'sweep' requires field 'constant'");
      }
      if (request.values.empty()) {
        throw BadRequest("op 'sweep' requires a non-empty 'values' array");
      }
    }
    result.request = std::move(request);
  } catch (const BadRequest& error) {
    result.error = {"bad_request", error.what(), ""};
  }
  return result;
}

std::string synthetic_envelope(std::string_view id, std::string_view op_text,
                               const ErrorInfo& error) {
  util::JsonWriter writer(0);
  writer.begin_object();
  writer.key("schema_version").value(kSchemaVersion);
  writer.key("id").value(id);
  writer.key("op").value(op_text);
  writer.key("ok").value(false);
  writer.key("error");
  writer.begin_object();
  writer.key("code").value(error.code);
  writer.key("message").value(error.message);
  if (!error.stage.empty()) writer.key("stage").value(error.stage);
  if (error.retry_after_ms) {
    writer.key("retry_after_ms").value(*error.retry_after_ms);
  }
  writer.end_object();
  writer.key("metrics");
  writer.begin_object();
  writer.key("wall_seconds").value(0.0);
  writer.key("session_cache").value("none");
  writer.key("disk_cache").value("none");
  writer.key("explores").value(static_cast<uint64_t>(0));
  writer.key("states").value(static_cast<uint64_t>(0));
  writer.key("solver_fallbacks").value(static_cast<uint64_t>(0));
  writer.key("engine").value("none");
  writer.end_object();
  writer.end_object();
  return writer.take();
}

}  // namespace autosec::service
