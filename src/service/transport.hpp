// Socket transport shared by every networked `autosec serve` mode: TCP and
// Unix-domain listeners plus a concurrent accept loop that serves each
// connection on its own thread. Both the single-process server and the
// pre-fork shard parent (service/shard.hpp) run their connections through
// this loop — the difference is only the ConnectionHandler they install.
//
// Concurrency model: one reader thread per live connection (capped by
// AcceptLoopOptions::max_connections; connections beyond the cap receive one
// overflow line and are closed). A connection's handler is only ever called
// from that connection's thread; responses go through the connection's
// ConnectionSink, which is safe to write from any thread (the shard parent
// writes from worker-reader threads). A drain request (util/drain.hpp) stops
// the accept loop, lets every connection finish the request lines it already
// read, joins the connection threads and returns 0.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace autosec::service {

/// Bind and listen on a TCP address ("PORT" or "HOST:PORT"; host defaults to
/// 127.0.0.1, port 0 asks the kernel for a free one). Returns the listening
/// fd, or -1 with `error` filled. `*bound_port` (optional) reports the
/// resolved port — how tests and CI discover a `--tcp 127.0.0.1:0` server.
int listen_tcp(const std::string& address, int* bound_port, std::string& error);

/// Bind and listen on a Unix-domain socket path (an existing socket file is
/// replaced). Returns the listening fd, or -1 with `error` filled.
int listen_unix(const std::string& path, std::string& error);

/// write(2) the whole buffer, riding out EINTR and partial writes; false when
/// the peer went away (EPIPE &c. — the caller drops the rest of that
/// connection's output).
bool write_fd_all(int fd, std::string_view data);

/// Ignore SIGPIPE process-wide so writers see EPIPE as a return value, not a
/// process-killing signal — clients vanish mid-response all the time on a
/// fleet. Called by the listen_* helpers and serve_connections; exposed for
/// callers that write to sockets they did not obtain through them (shard
/// workers inherit their fds from the parent).
void ignore_sigpipe();

/// Thread-safe line writer bound to one client connection. The sink does not
/// own the fd (the connection thread closes it after the handler finished).
class ConnectionSink {
 public:
  explicit ConnectionSink(int fd) : fd_(fd) {}

  /// Write one response line (newline appended). Thread-safe; once the peer
  /// is gone, further writes are silently dropped.
  void write_line(std::string_view line);
  bool broken() const { return broken_.load(std::memory_order_relaxed); }

 private:
  int fd_;
  std::mutex mutex_;
  std::atomic<bool> broken_{false};
};

/// Per-connection request processor. Methods are called from the
/// connection's reader thread only; implementations may answer
/// asynchronously through the sink as long as finish() blocks until every
/// accepted line has been answered (per-connection input order is the
/// implementation's contract — see Server::handle_batch and ShardConnection).
class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;

  /// Handle a batch of complete request lines (one read's worth, blank lines
  /// already dropped). Responses for them must eventually reach the sink in
  /// this order.
  virtual void handle_lines(std::vector<std::string> lines) = 0;

  /// EOF (or drain) on the connection: block until every line passed to
  /// handle_lines has been answered.
  virtual void finish() = 0;
};

using HandlerFactory = std::function<std::unique_ptr<ConnectionHandler>(
    std::shared_ptr<ConnectionSink> sink)>;

struct AcceptLoopOptions {
  /// Concurrent connections served; one beyond the cap gets the overflow
  /// line (if any) and an immediate close.
  size_t max_connections = 64;
  /// When set, re-read before every accept decision instead of
  /// max_connections — hot config reload retunes the cap on a live loop
  /// (0 there falls back to max_connections).
  std::shared_ptr<const std::atomic<size_t>> dynamic_max_connections;
  /// Response line for connections shed at the accept gate (no trailing
  /// newline; empty = close silently).
  std::function<std::string()> overflow_line;
};

/// Accept loop over a listening fd: serves every connection on its own
/// thread until a drain is requested, then joins the connection threads
/// (letting each answer the lines it already read) and returns 0. The
/// listening fd is not closed.
int serve_connections(int listen_fd, const AcceptLoopOptions& options,
                      const HandlerFactory& factory, std::ostream& err);

}  // namespace autosec::service
