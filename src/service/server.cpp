#include "service/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <new>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "automotive/analyzer.hpp"
#include "automotive/archfile.hpp"
#include "automotive/diagnostics.hpp"
#include "automotive/transform.hpp"
#include "csl/checkpoint.hpp"
#include "csl/property_parser.hpp"
#include "csl/session.hpp"
#include "service/shard.hpp"
#include "service/transport.hpp"
#include "util/budget.hpp"
#include "util/cancel.hpp"
#include "util/drain.hpp"
#include "util/failure.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace autosec::service {

namespace {

using automotive::SecurityCategory;
using util::JsonValue;

/// Client mistakes discovered after parsing (missing file, unknown message,
/// invalid architecture); carries the structured error of the response.
class RequestError : public std::runtime_error {
 public:
  explicit RequestError(ErrorInfo info)
      : std::runtime_error(info.message), info_(std::move(info)) {}
  const ErrorInfo& info() const { return info_; }

 private:
  ErrorInfo info_;
};

[[noreturn]] void bad_request(const std::string& message) {
  throw RequestError({"bad_request", message, ""});
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_request("cannot open architecture file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string hex64(uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::string_view solver_token(const std::optional<linalg::FixpointMethod>& solver) {
  if (!solver) return "auto";
  switch (*solver) {
    case linalg::FixpointMethod::kAuto: return "auto";
    case linalg::FixpointMethod::kGaussSeidel: return "gauss_seidel";
    case linalg::FixpointMethod::kKrylov: return "krylov";
  }
  return "auto";
}

/// Categories of an analyze grid: explicit list or the standard three.
std::vector<SecurityCategory> grid_categories(const Request& request) {
  if (!request.categories.empty()) return request.categories;
  return {SecurityCategory::kConfidentiality, SecurityCategory::kIntegrity,
          SecurityCategory::kAvailability};
}

/// Session-cache key: architecture content digest + every knob that changes
/// the transformed model or the solver configuration baked into the session.
/// Constant overrides and the horizon are deliberately NOT part of the key —
/// the session re-keys its own stage cache per override set (that is what
/// makes sweeps cheap) and the horizon only appears in property texts.
std::string make_key(const char* kind, uint64_t digest, const Request& request) {
  std::string key(kind);
  key += ':';
  key += hex64(digest);
  key += ";nmax=";
  key += std::to_string(request.nmax);
  key += ";solver=";
  key += solver_token(request.solver);
  // Different engine → potentially different state enumeration; never share
  // a cached session across engine choices.
  key += ";engine=";
  key += symbolic::engine_token(request.engine);
  // Kernel knobs are baked into the session's solver configuration (the
  // reorder even changes the cached uniformized matrix), so they key too.
  key += ";layout=";
  key += linalg::layout_token(request.layout);
  key += ";gs=";
  key += linalg::gs_ordering_token(request.gs_ordering);
  key += ";reorder=";
  key += linalg::reorder_token(request.reorder);
  if (!request.steady_state_detection) key += ";ssd=off";
  // The model family changes the transformed model entirely — a cached ctmc
  // session must never answer an mdp request. Suffix only when non-default so
  // every pre-existing ctmc key is unchanged.
  if (request.model_type == symbolic::ModelType::kMdp) key += ";mt=mdp";
  if (request.op == Op::kAnalyze) {
    key += ";msgs=";
    for (const std::string& message : request.messages) {
      key += message;
      key += ',';
    }
    key += ";cats=";
    for (const SecurityCategory category : grid_categories(request)) {
      key += automotive::category_key(category);
      key += ',';
    }
  } else {
    key += ";msg=";
    key += request.message;
    key += ";cat=";
    key += automotive::category_key(request.category);
  }
  return key;
}

/// Per-request cancel token: armed when the request (or the server default)
/// carries a timeout. timeout_ms == 0 arms an already-expired deadline, so
/// the very first engine safepoint unwinds — the deterministic timeout path.
std::shared_ptr<util::CancelToken> make_token(
    const Request& request, const std::optional<int64_t>& fallback_ms) {
  const std::optional<int64_t> ms =
      request.timeout_ms ? request.timeout_ms : fallback_ms;
  if (!ms) return nullptr;
  auto token = std::make_shared<util::CancelToken>();
  token->set_deadline_after(std::chrono::milliseconds(*ms));
  return token;
}

/// Per-request resource meter. Always non-null: ceilings of 0 mean the
/// request set no limit, but the meter still records the peak bytes the
/// engine charged — the observation the admission controller's working-set
/// estimate learns from. Budgets are deliberately NOT part of the cache key:
/// they bound one request's work, they do not change the model or the
/// session's stages.
std::shared_ptr<util::ResourceBudget> make_budget(const Request& request) {
  const size_t max_states =
      request.max_states ? static_cast<size_t>(*request.max_states) : 0;
  const size_t max_bytes =
      request.max_memory_mb
          ? static_cast<size_t>(*request.max_memory_mb) * 1024 * 1024
          : 0;
  return std::make_shared<util::ResourceBudget>(max_states, max_bytes);
}

/// Engine knobs of one request, shared by every op.
automotive::AnalysisOptions engine_options(
    const Request& request, std::shared_ptr<util::CancelToken> token,
    std::shared_ptr<util::ResourceBudget> budget) {
  automotive::AnalysisOptions options;
  options.nmax = request.nmax;
  options.horizon_years = request.horizon_years;
  options.constant_overrides = request.overrides;
  options.model_type = request.model_type;
  if (request.solver) options.plan.method = *request.solver;
  options.plan.gs_ordering = request.gs_ordering;
  options.plan.layout = request.layout;
  options.plan.reorder = request.reorder;
  options.plan.steady_state_detection = request.steady_state_detection;
  options.plan.engine = request.engine;
  options.cancel = std::move(token);
  options.budget = std::move(budget);
  return options;
}

/// Parse the architecture text, mapping parse/validation failures to
/// bad_request (the client named a bad file, not an engine defect).
automotive::Architecture parse_architecture_checked(const std::string& content,
                                                    const std::string& path) {
  try {
    return automotive::parse_architecture(content);
  } catch (const std::exception& error) {
    bad_request("invalid architecture '" + path + "': " + error.what());
  }
}

/// The "detail" object of an engine-failure envelope: only the progress
/// fields the failing stage actually reported.
JsonValue progress_to_json(const util::FailureProgress& progress) {
  JsonValue detail = JsonValue::object();
  if (progress.states_explored) {
    detail["states_explored"] = JsonValue::number(*progress.states_explored);
  }
  if (progress.frontier_size) {
    detail["frontier_size"] = JsonValue::number(*progress.frontier_size);
  }
  if (progress.last_command) {
    detail["last_command"] = JsonValue::string(*progress.last_command);
  }
  if (progress.iterations) {
    detail["iterations"] = JsonValue::number(*progress.iterations);
  }
  if (progress.residual) {
    detail["residual"] = JsonValue::number(*progress.residual);
  }
  if (progress.limit) detail["limit"] = JsonValue::number(*progress.limit);
  if (progress.charged_bytes) {
    detail["charged_bytes"] = JsonValue::number(*progress.charged_bytes);
  }
  return detail;
}

JsonValue result_to_json(const automotive::AnalysisResult& result) {
  JsonValue out = JsonValue::object();
  out["message"] = JsonValue::string(result.message);
  out["category"] = JsonValue::string(automotive::category_name(result.category));
  out["exploitable_fraction"] = JsonValue::number(result.exploitable_fraction);
  out["breach_probability"] = JsonValue::number(result.breach_probability);
  out["steady_state_fraction"] = JsonValue::number(result.steady_state_fraction);
  // +inf (breach not certain) serializes as null per the JSON convention.
  out["mean_time_to_breach"] = JsonValue::number(result.mean_time_to_breach);
  return out;
}

/// Ops whose result depends only on the request identity + architecture
/// content — safe to replay from the disk cache. Status reports live server
/// state and is never cached.
bool disk_cacheable(Op op) { return op != Op::kStatus; }

/// Session-key kind prefix of an op (how run_* builds its make_key).
const char* key_kind(Op op) {
  switch (op) {
    case Op::kAnalyze: return "batch";
    case Op::kCheck:
    case Op::kSweep: return "single";
    case Op::kDiagnose: return "diag";
    case Op::kStatus: return "status";
  }
  return "status";
}

/// Disk-cache key: the session key (architecture content digest + every
/// engine knob) extended with everything the session deliberately leaves out
/// because it re-keys per call — the op, the horizon, constant overrides,
/// property texts, and sweep values. Numbers go through util::json_number so
/// the key is exact, not printf-rounded. Timeouts and resource budgets stay
/// out: they bound the work, they do not change a successful result.
std::string make_disk_key(const Request& request, uint64_t digest) {
  std::string key(op_name(request.op));
  key += '|';
  key += make_key(key_kind(request.op), digest, request);
  key += ";h=";
  key += util::json_number(request.horizon_years);
  key += ";ov=";
  key += csl::override_cache_key(request.overrides);
  if (request.op == Op::kCheck) {
    key += ";props=";
    for (const std::string& property : request.properties) {
      key += property;
      key += '\x1f';
    }
    // A strategy-bearing response carries more than the plain one; the two
    // must not share a disk entry. (The session key is unaffected — the same
    // session answers both.)
    if (request.strategy) key += ";strat=1";
  } else if (request.op == Op::kSweep) {
    key += ";const=";
    key += request.constant;
    key += ";vals=";
    for (const double value : request.values) {
      key += util::json_number(value);
      key += '\x1f';
    }
  }
  return key;
}

/// Startup merge of --config over the command-line flags, so
/// constructor-time sizing (cache capacity, admission, disk-cache quota)
/// already reflects the file. A bad file throws: startup fails loudly,
/// unlike a reload (where the previous config stays in force).
ServerOptions with_startup_config(ServerOptions options) {
  if (options.config_path.empty()) return options;
  const ServeConfig config = ServeConfig::from_file(options.config_path);
  if (config.max_inflight) options.max_inflight = *config.max_inflight;
  if (config.max_load_mb) options.max_load_mb = *config.max_load_mb;
  if (config.max_connections) options.max_connections = *config.max_connections;
  if (config.cache_capacity) options.cache_capacity = *config.cache_capacity;
  if (config.disk_cache_mb) options.disk_cache_mb = *config.disk_cache_mb;
  if (config.checkpoint_interval_ms) {
    options.checkpoint_interval_ms = *config.checkpoint_interval_ms;
  }
  if (config.default_timeout_ms) {
    if (*config.default_timeout_ms < 0) {
      options.default_timeout_ms = std::nullopt;
    } else {
      options.default_timeout_ms = *config.default_timeout_ms;
    }
  }
  if (config.max_batch) options.max_batch = *config.max_batch;
  if (config.watchdog_ms) options.watchdog_ms = *config.watchdog_ms;
  if (config.log_level) {
    util::set_log_level(util::parse_log_level(*config.log_level));
  }
  return options;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(with_startup_config(std::move(options))),
      cache_(options_.cache_capacity),
      admission_(AdmissionOptions{options_.max_inflight, options_.max_load_mb,
                                  options_.deterministic}) {
  if (!options_.disk_cache_dir.empty()) {
    disk_cache_ = std::make_unique<DiskCache>(
        options_.disk_cache_dir, options_.disk_cache_mb * (size_t{1} << 20));
  }
  if (!options_.checkpoint_dir.empty()) {
    // Fail fast: an unusable checkpoint directory discovered on the first
    // request would silently disable the crash-durability the operator asked
    // for.
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec || !std::filesystem::is_directory(options_.checkpoint_dir)) {
      throw std::runtime_error("serve: cannot create checkpoint directory '" +
                               options_.checkpoint_dir + "'" +
                               (ec ? ": " + ec.message() : ""));
    }
  }
  default_timeout_ms_.store(options_.default_timeout_ms.value_or(-1),
                            std::memory_order_relaxed);
  max_batch_.store(options_.max_batch, std::memory_order_relaxed);
  checkpoint_interval_ms_.store(options_.checkpoint_interval_ms,
                                std::memory_order_relaxed);
  watchdog_ms_.store(options_.watchdog_ms, std::memory_order_relaxed);
  max_connections_ =
      std::make_shared<std::atomic<size_t>>(options_.max_connections);
  if (!options_.config_path.empty()) {
    // Re-derive the canonical form for status; with_startup_config already
    // validated the file, so a racing edit here at worst blanks the surface.
    try {
      active_config_ = ServeConfig::from_file(options_.config_path).canonical();
    } catch (const std::exception&) {
      active_config_.clear();
    }
  }
}

std::optional<int64_t> Server::effective_timeout() const {
  const int64_t ms = default_timeout_ms_.load(std::memory_order_relaxed);
  if (ms < 0) return std::nullopt;
  return ms;
}

std::shared_ptr<csl::CheckpointLedger> Server::make_ledger(
    const Request& request, uint64_t digest, RequestMetrics& metrics) {
  if (options_.checkpoint_dir.empty()) return nullptr;
  csl::CheckpointOptions checkpoint_options;
  checkpoint_options.dir = options_.checkpoint_dir;
  // The full request identity (op + content digest + every knob): a model
  // edit or a different question hashes to a different ledger file and can
  // never replay a stale value.
  checkpoint_options.identity = make_disk_key(request, digest);
  checkpoint_options.interval_ms =
      checkpoint_interval_ms_.load(std::memory_order_relaxed);
  try {
    auto ledger = std::make_shared<csl::CheckpointLedger>(checkpoint_options);
    metrics.checkpoint_records = ledger->load();
    return ledger;
  } catch (const std::exception& error) {
    AUTOSEC_LOG_WARN("serve")
        << "checkpoint disabled for request: " << error.what();
    return nullptr;
  }
}

void Server::apply_config(const ServeConfig& config) {
  const AdmissionController::Stats admission_stats = admission_.stats();
  admission_.set_limits(
      config.max_inflight.value_or(admission_stats.max_inflight),
      config.max_load_mb.value_or(admission_stats.max_load_mb));
  if (config.max_connections) {
    max_connections_->store(*config.max_connections,
                            std::memory_order_relaxed);
  }
  if (config.cache_capacity) cache_.set_capacity(*config.cache_capacity);
  if (config.disk_cache_mb && disk_cache_) {
    disk_cache_->set_quota(*config.disk_cache_mb * (size_t{1} << 20));
  }
  if (config.checkpoint_interval_ms) {
    checkpoint_interval_ms_.store(*config.checkpoint_interval_ms,
                                  std::memory_order_relaxed);
  }
  if (config.default_timeout_ms) {
    default_timeout_ms_.store(*config.default_timeout_ms < 0
                                  ? int64_t{-1}
                                  : *config.default_timeout_ms,
                              std::memory_order_relaxed);
  }
  if (config.max_batch) {
    max_batch_.store(*config.max_batch, std::memory_order_relaxed);
  }
  if (config.watchdog_ms) {
    watchdog_ms_.store(*config.watchdog_ms, std::memory_order_relaxed);
  }
  if (config.log_level) {
    util::set_log_level(util::parse_log_level(*config.log_level));
  }
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    active_config_ = config.canonical();
  }
  config_reloads_.fetch_add(1, std::memory_order_relaxed);
  util::metrics::registry().add("serve.config_reloads");
}

bool Server::apply_config_text(const std::string& text) {
  try {
    apply_config(ServeConfig::parse(text));
    return true;
  } catch (const std::exception& error) {
    AUTOSEC_LOG_WARN("serve")
        << "config reload rejected (previous configuration stays in "
           "force): "
        << error.what();
    return false;
  }
}

bool Server::reload_config_file() {
  if (options_.config_path.empty()) return false;
  try {
    apply_config(ServeConfig::from_file(options_.config_path));
    AUTOSEC_LOG_INFO("serve")
        << "config reloaded from '" << options_.config_path << "'";
    return true;
  } catch (const std::exception& error) {
    AUTOSEC_LOG_WARN("serve")
        << "config reload rejected (previous configuration stays in "
           "force): "
        << error.what();
    return false;
  }
}

std::string Server::active_config() const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  return active_config_.empty() ? "{}" : active_config_;
}

void Server::reload_watch_loop() {
  // A short poll (rather than blocking forever) lets run() stop this thread
  // on paths that finish without a drain signal (stdin EOF).
  while (!reload_stop_.load(std::memory_order_relaxed)) {
    pollfd fds[1] = {{util::reload_fd(), POLLIN, 0}};
    ::poll(fds, 1, 200);
    if (util::consume_reload()) reload_config_file();
  }
}

util::JsonValue Server::run_analyze(const Request& request,
                                    RequestMetrics& metrics) {
  const std::string content = read_file(request.architecture);
  const uint64_t digest = fnv1a64(content);
  const std::string key = make_key("batch", digest, request);
  const auto token = make_token(request, effective_timeout());
  metrics.budget = make_budget(request);
  const auto ledger = make_ledger(request, digest, metrics);
  const std::vector<SecurityCategory> categories = grid_categories(request);

  bool hit = false;
  const auto entry = cache_.acquire(
      key,
      [&] {
        const automotive::Architecture arch =
            parse_architecture_checked(content, request.architecture);
        return automotive::make_batch_session(
            arch, engine_options(request, nullptr, nullptr), categories,
            request.messages);
      },
      &hit);

  std::lock_guard<std::mutex> lock(entry->mutex);
  metrics.session_cache = hit ? "hit" : "miss";
  metrics.cache_key = key;
  automotive::AnalysisOptions analysis_options =
      engine_options(request, token, metrics.budget);
  analysis_options.checkpoint = ledger;
  const automotive::ArchitectureReport report =
      automotive::analyze_batch_session(entry->batch, analysis_options);
  if (ledger) {
    ledger->flush();
    metrics.checkpoint_hits = ledger->resumed_hits();
    metrics.checkpoint_records = ledger->size();
  }

  metrics.explores = report.stats.explore_count;
  metrics.solver_fallbacks = report.stats.solver_fallbacks;
  if (!report.stats.engine.empty()) metrics.engine = report.stats.engine;
  if (!report.results.empty()) metrics.states = report.results.front().state_count;

  JsonValue result = JsonValue::object();
  result["architecture"] = JsonValue::string(entry->batch.architecture_name);
  result["horizon_years"] = JsonValue::number(request.horizon_years);
  JsonValue results = JsonValue::array();
  for (const automotive::AnalysisResult& r : report.results) {
    results.push_back(result_to_json(r));
  }
  result["results"] = std::move(results);
  return result;
}

util::JsonValue Server::run_check(const Request& request, RequestMetrics& metrics) {
  const std::string content = read_file(request.architecture);
  const uint64_t digest = fnv1a64(content);
  const std::string key = make_key("single", digest, request);
  const auto token = make_token(request, effective_timeout());

  bool hit = false;
  const auto entry = cache_.acquire(
      key,
      [&] {
        const automotive::Architecture arch =
            parse_architecture_checked(content, request.architecture);
        if (!request.message.empty() &&
            std::none_of(arch.messages.begin(), arch.messages.end(),
                         [&](const automotive::Message& m) {
                           return m.name == request.message;
                         })) {
          bad_request("unknown message '" + request.message + "'");
        }
        automotive::TransformOptions transform_options;
        transform_options.message = request.message;
        transform_options.category = request.category;
        transform_options.nmax = request.nmax;
        transform_options.model_type = request.model_type;
        automotive::BatchSession batch;
        batch.architecture_name = arch.name;
        batch.messages = {request.message};
        batch.categories = {request.category};
        csl::SessionOptions session_options;
        static_cast<csl::EngineOptions&>(session_options) =
            engine_options(request, nullptr, nullptr);
        session_options.cancel = nullptr;
        session_options.budget = nullptr;  // budgets are per-request, not per-entry
        try {
          batch.session = std::make_shared<csl::EngineSession>(
              automotive::transform(arch, transform_options), session_options);
        } catch (const std::exception& error) {
          bad_request(std::string("cannot transform architecture: ") + error.what());
        }
        return batch;
      },
      &hit);

  std::lock_guard<std::mutex> lock(entry->mutex);
  metrics.session_cache = hit ? "hit" : "miss";
  metrics.cache_key = key;
  metrics.budget = make_budget(request);
  csl::EngineSession& session = *entry->batch.session;
  if (csl::override_cache_key(request.overrides) !=
      csl::override_cache_key(session.options().constant_overrides)) {
    session.set_constant_overrides(request.overrides);
  }
  session.set_cancel_token(token);
  session.set_resource_budget(metrics.budget);
  // Attach (or detach) this request's ledger: the session outlives requests
  // in the cache, so a stale ledger must never linger on it.
  const auto ledger = make_ledger(request, digest, metrics);
  session.set_checkpoint(ledger);
  const csl::SessionStats before = session.stats();

  std::vector<double> values;
  std::vector<JsonValue> strategies;
  if (request.strategy) {
    // Strategy export solves per property (the scheduler is per-objective);
    // properties that cannot carry one (rewards, steady state) fail the
    // whole request with the engine's typed error.
    values.reserve(request.properties.size());
    strategies.reserve(request.properties.size());
    for (const std::string& text : request.properties) {
      const csl::Property property = csl::parse_property(text);
      const csl::StrategyCheck checked = session.check_with_strategy(property);
      values.push_back(checked.value);
      strategies.push_back(
          session.strategy_document(property, checked.strategy));
    }
  } else {
    values = session.check_all(request.properties);
  }
  session.set_checkpoint(nullptr);
  if (ledger) {
    ledger->flush();
    metrics.checkpoint_hits = ledger->resumed_hits();
    metrics.checkpoint_records = ledger->size();
  }

  metrics.explores = session.stats().explore_count - before.explore_count;
  metrics.solver_fallbacks =
      session.stats().solver_fallbacks - before.solver_fallbacks;
  metrics.states = session.space().state_count();
  if (!session.stats().engine.empty()) metrics.engine = session.stats().engine;

  JsonValue result = JsonValue::object();
  result["architecture"] = JsonValue::string(entry->batch.architecture_name);
  result["message"] = JsonValue::string(request.message);
  result["category"] =
      JsonValue::string(automotive::category_name(request.category));
  JsonValue rows = JsonValue::array();
  for (size_t i = 0; i < request.properties.size(); ++i) {
    JsonValue row = JsonValue::object();
    row["property"] = JsonValue::string(request.properties[i]);
    row["value"] = JsonValue::number(values[i]);
    if (i < strategies.size()) row["strategy"] = std::move(strategies[i]);
    rows.push_back(std::move(row));
  }
  result["properties"] = std::move(rows);
  return result;
}

util::JsonValue Server::run_sweep(const Request& request, RequestMetrics& metrics) {
  const std::string content = read_file(request.architecture);
  const uint64_t digest = fnv1a64(content);
  const std::string key = make_key("single", digest, request);
  const auto token = make_token(request, effective_timeout());

  bool hit = false;
  const auto entry = cache_.acquire(
      key,
      [&] {
        const automotive::Architecture arch =
            parse_architecture_checked(content, request.architecture);
        automotive::TransformOptions transform_options;
        transform_options.message = request.message;
        transform_options.category = request.category;
        transform_options.nmax = request.nmax;
        transform_options.model_type = request.model_type;
        automotive::BatchSession batch;
        batch.architecture_name = arch.name;
        batch.messages = {request.message};
        batch.categories = {request.category};
        csl::SessionOptions session_options;
        static_cast<csl::EngineOptions&>(session_options) =
            engine_options(request, nullptr, nullptr);
        session_options.cancel = nullptr;
        session_options.budget = nullptr;  // budgets are per-request, not per-entry
        try {
          batch.session = std::make_shared<csl::EngineSession>(
              automotive::transform(arch, transform_options), session_options);
        } catch (const std::exception& error) {
          bad_request(std::string("cannot transform architecture: ") + error.what());
        }
        return batch;
      },
      &hit);

  std::lock_guard<std::mutex> lock(entry->mutex);
  metrics.session_cache = hit ? "hit" : "miss";
  metrics.cache_key = key;
  metrics.budget = make_budget(request);
  csl::EngineSession& session = *entry->batch.session;
  session.set_cancel_token(token);
  session.set_resource_budget(metrics.budget);
  const auto ledger = make_ledger(request, digest, metrics);
  session.set_checkpoint(ledger);
  const csl::SessionStats before = session.stats();

  const double horizon = request.horizon_years;
  const std::string property =
      "R{\"exposure\"}=? [ C<=" + std::to_string(horizon) + " ]";
  JsonValue points = JsonValue::array();
  // The points run sequentially on the one session: each value re-keys the
  // stage cache (a value seen before hits its cached stages), and the solves
  // themselves parallelize inside the kernels.
  for (const double value : request.values) {
    std::vector<std::pair<std::string, symbolic::Value>> overrides =
        request.overrides;
    overrides.emplace_back(request.constant, symbolic::Value::of(value));
    if (csl::override_cache_key(overrides) !=
        csl::override_cache_key(session.options().constant_overrides)) {
      session.set_constant_overrides(std::move(overrides));
    }
    JsonValue point = JsonValue::object();
    point["value"] = JsonValue::number(value);
    point["exploitable_fraction"] =
        JsonValue::number(session.check(property) / horizon);
    points.push_back(std::move(point));
  }
  session.set_checkpoint(nullptr);
  if (ledger) {
    ledger->flush();
    metrics.checkpoint_hits = ledger->resumed_hits();
    metrics.checkpoint_records = ledger->size();
  }

  metrics.explores = session.stats().explore_count - before.explore_count;
  metrics.solver_fallbacks =
      session.stats().solver_fallbacks - before.solver_fallbacks;
  metrics.states = session.space().state_count();
  if (!session.stats().engine.empty()) metrics.engine = session.stats().engine;

  JsonValue result = JsonValue::object();
  result["architecture"] = JsonValue::string(entry->batch.architecture_name);
  result["message"] = JsonValue::string(request.message);
  result["category"] =
      JsonValue::string(automotive::category_name(request.category));
  result["constant"] = JsonValue::string(request.constant);
  result["horizon_years"] = JsonValue::number(horizon);
  result["points"] = std::move(points);
  return result;
}

util::JsonValue Server::run_diagnose(const Request& request,
                                     RequestMetrics& metrics) {
  // Diagnostics perturb rate constants internally (one model per perturbed
  // value), so there is no long-lived session to reuse: session_cache "none".
  const std::string content = read_file(request.architecture);
  const automotive::Architecture arch =
      parse_architecture_checked(content, request.architecture);
  const auto token = make_token(request, effective_timeout());
  metrics.budget = make_budget(request);
  const automotive::AnalysisOptions analysis_options =
      engine_options(request, token, metrics.budget);

  automotive::CriticalityOptions criticality_options;
  criticality_options.analysis = analysis_options;
  const std::vector<automotive::Criticality> criticalities =
      automotive::criticality_analysis(arch, request.message, request.category,
                                       criticality_options);
  const automotive::BreachAttributionResult attribution =
      automotive::first_breach_attribution(arch, request.message, request.category,
                                           analysis_options);
  const automotive::SecurityAnalysis analysis(arch, request.message,
                                              request.category, analysis_options);

  JsonValue result = JsonValue::object();
  result["architecture"] = JsonValue::string(arch.name);
  result["message"] = JsonValue::string(request.message);
  result["category"] =
      JsonValue::string(automotive::category_name(request.category));

  JsonValue criticality = JsonValue::array();
  for (const automotive::Criticality& c : criticalities) {
    JsonValue row = JsonValue::object();
    row["constant"] = JsonValue::string(c.constant);
    row["value"] = JsonValue::number(c.base_value);
    row["elasticity"] = JsonValue::number(c.elasticity);
    criticality.push_back(std::move(row));
  }
  result["criticality"] = std::move(criticality);

  JsonValue breach = JsonValue::object();
  breach["total_breach_probability"] =
      JsonValue::number(attribution.total_breach_probability);
  JsonValue attributions = JsonValue::array();
  for (const automotive::BreachAttribution& a : attribution.attributions) {
    JsonValue row = JsonValue::object();
    row["component"] = JsonValue::string(a.component);
    row["probability"] = JsonValue::number(a.probability);
    attributions.push_back(std::move(row));
  }
  breach["attributions"] = std::move(attributions);
  result["first_breach"] = std::move(breach);

  JsonValue quantiles = JsonValue::array();
  for (const double q : {0.05, 0.25, 0.5, 0.95}) {
    JsonValue row = JsonValue::object();
    row["quantile"] = JsonValue::number(q);
    // +inf (quantile beyond max_years) serializes as null.
    row["years"] = JsonValue::number(automotive::breach_time_quantile(analysis, q));
    quantiles.push_back(std::move(row));
  }
  result["breach_time_quantiles"] = std::move(quantiles);

  metrics.states = analysis.space().state_count();
  return result;
}

util::JsonValue Server::run_status(const Request&, RequestMetrics&) {
  const SessionCache::Stats stats = cache_.stats();
  JsonValue result = JsonValue::object();
  // What this build of the service can do, for clients negotiating features
  // (the machine-readable request schema is tools/serve_schema.json).
  JsonValue capabilities = JsonValue::object();
  capabilities["schema_version"] = JsonValue::string(std::string(kSchemaVersion));
  JsonValue ops = JsonValue::array();
  for (const char* op : {"analyze", "check", "sweep", "diagnose", "status"}) {
    ops.push_back(JsonValue::string(op));
  }
  capabilities["ops"] = std::move(ops);
  JsonValue model_types = JsonValue::array();
  model_types.push_back(JsonValue::string("ctmc"));
  model_types.push_back(JsonValue::string("mdp"));
  capabilities["model_types"] = std::move(model_types);
  capabilities["strategy_export"] = JsonValue::boolean(true);
  result["capabilities"] = std::move(capabilities);
  JsonValue cache = JsonValue::object();
  cache["entries"] = JsonValue::number(stats.entries);
  cache["capacity"] = JsonValue::number(stats.capacity);
  cache["hits"] = JsonValue::number(stats.hits);
  cache["misses"] = JsonValue::number(stats.misses);
  cache["evictions"] = JsonValue::number(stats.evictions);
  result["cache"] = std::move(cache);
  const AdmissionController::Stats admission_stats = admission_.stats();
  JsonValue admission = JsonValue::object();
  admission["admitted"] = JsonValue::number(admission_stats.admitted);
  admission["shed"] = JsonValue::number(admission_stats.shed);
  admission["inflight"] = JsonValue::number(admission_stats.inflight);
  admission["max_inflight"] = JsonValue::number(admission_stats.max_inflight);
  admission["max_load_mb"] = JsonValue::number(admission_stats.max_load_mb);
  result["admission"] = std::move(admission);
  if (disk_cache_) {
    const DiskCache::Stats disk_stats = disk_cache_->stats();
    JsonValue disk = JsonValue::object();
    disk["hits"] = JsonValue::number(disk_stats.hits);
    disk["misses"] = JsonValue::number(disk_stats.misses);
    disk["stores"] = JsonValue::number(disk_stats.stores);
    disk["corrupt"] = JsonValue::number(disk_stats.corrupt);
    disk["evictions"] = JsonValue::number(disk_stats.evictions);
    disk["fsck_removed"] = JsonValue::number(disk_stats.fsck_removed);
    disk["size_bytes"] = JsonValue::number(disk_stats.size_bytes);
    disk["quota_bytes"] = JsonValue::number(disk_stats.quota_bytes);
    result["disk_cache"] = std::move(disk);
  } else {
    result["disk_cache"] = JsonValue::null();
  }
  if (!options_.checkpoint_dir.empty()) {
    JsonValue checkpoint = JsonValue::object();
    checkpoint["dir"] = JsonValue::string(options_.checkpoint_dir);
    checkpoint["interval_ms"] = JsonValue::number(
        checkpoint_interval_ms_.load(std::memory_order_relaxed));
    result["checkpoint"] = std::move(checkpoint);
  } else {
    result["checkpoint"] = JsonValue::null();
  }
  // The operational knobs as they stand right now — how an operator verifies
  // a SIGHUP reload actually landed.
  JsonValue config = JsonValue::object();
  config["path"] = options_.config_path.empty()
                       ? JsonValue::null()
                       : JsonValue::string(options_.config_path);
  config["reloads"] =
      JsonValue::number(config_reloads_.load(std::memory_order_relaxed));
  config["active"] = JsonValue::parse(active_config());
  config["max_connections"] = JsonValue::number(
      max_connections_->load(std::memory_order_relaxed));
  config["max_batch"] =
      JsonValue::number(max_batch_.load(std::memory_order_relaxed));
  const int64_t timeout_ms =
      default_timeout_ms_.load(std::memory_order_relaxed);
  config["default_timeout_ms"] = timeout_ms < 0
                                     ? JsonValue::null()
                                     : JsonValue::number(timeout_ms);
  config["watchdog_ms"] =
      JsonValue::number(watchdog_ms_.load(std::memory_order_relaxed));
  result["config"] = std::move(config);
  result["requests"] = JsonValue::number(requests_.load(std::memory_order_relaxed));
  result["errors"] = JsonValue::number(errors_.load(std::memory_order_relaxed));
  result["draining"] = JsonValue::boolean(draining());
  result["threads"] = JsonValue::number(util::thread_count());
  util::metrics::Registry& registry = util::metrics::registry();
  result["metrics"] = registry.enabled() ? JsonValue::parse(registry.to_json())
                                         : JsonValue::null();
  return result;
}

util::JsonValue Server::dispatch(const Request& request, RequestMetrics& metrics) {
  switch (request.op) {
    case Op::kAnalyze: return run_analyze(request, metrics);
    case Op::kCheck: return run_check(request, metrics);
    case Op::kSweep: return run_sweep(request, metrics);
    case Op::kDiagnose: return run_diagnose(request, metrics);
    case Op::kStatus: return run_status(request, metrics);
  }
  bad_request("unhandled op");
}

std::string Server::handle_line(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  util::metrics::registry().add("serve.requests");

  const ParseResult parsed = parse_request(line);
  RequestMetrics metrics;
  std::optional<JsonValue> result;
  ErrorInfo error;
  std::optional<JsonValue> error_detail;
  Ticket ticket;
  // An engine-side failure may have left the cached session in a bad state
  // (half-built stages, a poisoned matrix): drop the entry so the next
  // request rebuilds from scratch. Timeouts are NOT evicted — a cancelled
  // session is clean and its cached stages stay valid.
  bool evict_entry = false;
  bool admitted = true;

  if (draining()) {
    error = {"shutting_down", "service is draining and not accepting requests", ""};
  } else if (!parsed.request) {
    error = parsed.error;
  } else {
    // Admission gate: decide before any engine work starts, so a saturated
    // server sheds new requests instead of aborting admitted ones. Status is
    // exempt — it is how operators look at a saturated server.
    if (parsed.request->op != Op::kStatus) {
      int64_t retry_after_ms = 0;
      std::optional<Ticket> grant = admission_.try_admit(&retry_after_ms);
      if (!grant) {
        admitted = false;
        error = {"overloaded",
                 "service is at capacity; retry after retry_after_ms", ""};
        error.retry_after_ms = retry_after_ms;
        util::metrics::registry().add("serve.shed");
      } else {
        ticket = std::move(*grant);
      }
    }
    if (admitted) {
      try {
        // Fault site: proves the dispatcher converts an allocation failure into
        // a structured oom envelope and keeps serving (autosec-verify --faults).
        if (util::fault::triggered("serve.dispatch.alloc")) throw std::bad_alloc();
        // Disk-cache probe: a hit replays the stored result without touching
        // the engine at all (explores 0 by construction).
        std::optional<std::string> disk_key;
        if (disk_cache_ && disk_cacheable(parsed.request->op)) {
          const std::string content = read_file(parsed.request->architecture);
          disk_key = make_disk_key(*parsed.request, fnv1a64(content));
          if (const std::optional<std::string> payload =
                  disk_cache_->lookup(*disk_key)) {
            const JsonValue stored = JsonValue::parse(*payload);
            if (const JsonValue* stored_result = stored.find("result")) {
              result = *stored_result;
              metrics.disk_cache = "hit";
              metrics.states =
                  static_cast<size_t>(stored.int_or("states", 0));
              metrics.engine = stored.string_or("engine", "none");
              util::metrics::registry().add("serve.disk_hits");
            }
          }
          if (!result) metrics.disk_cache = "miss";
        }
        if (!result) {
          result = dispatch(*parsed.request, metrics);
          if (disk_key && result) {
            JsonValue stored = JsonValue::object();
            stored["result"] = *result;
            stored["states"] = JsonValue::number(metrics.states);
            stored["engine"] = JsonValue::string(metrics.engine);
            disk_cache_->store(*disk_key, stored.dump());
          }
        }
      } catch (const util::Cancelled& cancelled) {
        error = {"timeout", cancelled.what(), cancelled.stage()};
      } catch (const RequestError& request_error) {
        error = request_error.info();
      } catch (const util::EngineFailure& failure) {
        error = {failure.code_name(), failure.what(), failure.stage()};
        error_detail = progress_to_json(failure.progress());
        evict_entry = true;
      } catch (const std::bad_alloc&) {
        error = {"oom", "allocation failure while handling the request", ""};
        evict_entry = true;
      } catch (const std::exception& engine_error) {
        error = {"engine_error", engine_error.what(), ""};
      } catch (...) {
        error = {"internal_error",
                 "an unexpected exception crossed the dispatcher", ""};
        evict_entry = true;
      }
    }
  }
  if (evict_entry && !metrics.cache_key.empty()) {
    cache_.evict(metrics.cache_key);
  }
  if (!result) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    util::metrics::registry().add("serve.errors");
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  metrics.wall_seconds = options_.deterministic ? 0.0 : wall_seconds;
  // Feed what this request actually cost back into the admission estimates
  // (the ticket's destructor releases the slot and reservation).
  ticket.observe(wall_seconds * 1000.0,
                 metrics.budget ? metrics.budget->peak_bytes() : 0);

  util::JsonWriter writer(0);
  writer.begin_object();
  writer.key("schema_version").value(kSchemaVersion);
  writer.key("id").value(parsed.id);
  writer.key("op").value(parsed.op_text);
  writer.key("ok").value(result.has_value());
  if (result) {
    writer.key("result");
    result->write(writer);
  } else {
    writer.key("error");
    writer.begin_object();
    writer.key("code").value(error.code);
    writer.key("message").value(error.message);
    if (!error.stage.empty()) writer.key("stage").value(error.stage);
    if (error.retry_after_ms) {
      writer.key("retry_after_ms").value(*error.retry_after_ms);
    }
    if (error_detail && error_detail->size() > 0) {
      writer.key("detail");
      error_detail->write(writer);
    }
    writer.end_object();
  }
  writer.key("metrics");
  writer.begin_object();
  writer.key("wall_seconds").value(metrics.wall_seconds);
  writer.key("session_cache").value(metrics.session_cache);
  writer.key("disk_cache").value(metrics.disk_cache);
  writer.key("explores").value(metrics.explores);
  writer.key("states").value(metrics.states);
  writer.key("solver_fallbacks").value(metrics.solver_fallbacks);
  writer.key("engine").value(metrics.engine);
  // Only when checkpointing is armed — the v1 envelope without --checkpoint
  // is golden-tested and must stay byte-stable.
  if (!options_.checkpoint_dir.empty()) {
    writer.key("checkpoint");
    writer.begin_object();
    writer.key("hits").value(metrics.checkpoint_hits);
    writer.key("records").value(metrics.checkpoint_records);
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
  return writer.take();
}

std::vector<std::string> Server::handle_batch(const std::vector<std::string>& lines) {
  std::vector<std::string> responses(lines.size());
  size_t index = 0;
  while (index < lines.size()) {
    const size_t batch = std::min(effective_max_batch(), lines.size() - index);
    if (batch == 1) {
      responses[index] = handle_line(lines[index]);
    } else {
      // Fan the batch across the pool; responses keep input order because
      // every slot writes only its own element.
      util::parallel_for(0, batch, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          responses[index + i] = handle_line(lines[index + i]);
        }
      });
    }
    index += batch;
  }
  return responses;
}

void Server::process_buffered(std::string& buffer, std::ostream& out) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (true) {
    const size_t newline = buffer.find('\n', pos);
    if (newline == std::string::npos) break;
    std::string line = buffer.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      lines.push_back(std::move(line));  // blank lines are ignored, not errors
    }
  }
  buffer.erase(0, pos);
  if (lines.empty()) return;

  for (const std::string& response : handle_batch(lines)) out << response << '\n';
  out.flush();
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  std::ostringstream all;
  all << in.rdbuf();
  std::string buffer = all.str();
  if (!buffer.empty() && buffer.back() != '\n') buffer += '\n';
  process_buffered(buffer, out);
  return 0;
}

int Server::serve_fd(int fd, std::ostream& out) {
  std::string buffer;
  bool eof = false;
  while (!eof && !util::drain_requested()) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {util::drain_fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain signal
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    char chunk[65536];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (got == 0) {
      eof = true;
    } else {
      buffer.append(chunk, static_cast<size_t>(got));
      // Requests already received are handled (and answered) even if a drain
      // arrives while they run — the graceful part of the drain.
      process_buffered(buffer, out);
    }
  }
  process_buffered(buffer, out);
  begin_drain();
  return 0;
}

std::string Server::overflow_response() const {
  ErrorInfo error{"overloaded",
                  "connection limit reached; retry after retry_after_ms", ""};
  error.retry_after_ms = options_.deterministic ? 100 : 1000;
  return synthetic_envelope("", "", error);
}

namespace {

/// In-process connection handler: every batch of lines fans across the
/// engine pool synchronously, so finish() has nothing left to wait for.
class DirectConnection : public ConnectionHandler {
 public:
  DirectConnection(Server& server, std::shared_ptr<ConnectionSink> sink)
      : server_(server), sink_(std::move(sink)) {}

  void handle_lines(std::vector<std::string> lines) override {
    for (const std::string& response : server_.handle_batch(lines)) {
      sink_->write_line(response);
    }
  }

  void finish() override {}

 private:
  Server& server_;
  std::shared_ptr<ConnectionSink> sink_;
};

}  // namespace

int Server::serve_listener(int listen_fd, std::ostream& err) {
  AcceptLoopOptions accept_options;
  accept_options.max_connections = options_.max_connections;
  accept_options.dynamic_max_connections = max_connections_;
  accept_options.overflow_line = [this] { return overflow_response(); };
  const int rc = serve_connections(
      listen_fd, accept_options,
      [this](std::shared_ptr<ConnectionSink> sink) {
        return std::make_unique<DirectConnection>(*this, std::move(sink));
      },
      err);
  begin_drain();
  err << "serve: drained, shutting down\n";
  return rc;
}

int Server::run(std::ostream& out, std::ostream& err) {
  if (options_.threads > 0) {
    util::set_thread_count(static_cast<size_t>(options_.threads));
  }
  if (!options_.tcp_address.empty() && !options_.socket_path.empty()) {
    err << "serve: --tcp and --socket are mutually exclusive\n";
    return 2;
  }
  const bool has_listener =
      !options_.tcp_address.empty() || !options_.socket_path.empty();
  if (options_.workers > 0 && !has_listener) {
    err << "serve: --workers requires --tcp or --socket\n";
    return 2;
  }
  if (!options_.input_path.empty()) {
    std::ifstream in(options_.input_path);
    if (!in) {
      err << "serve: cannot open input '" << options_.input_path << "'\n";
      return 2;
    }
    return serve_stream(in, out);
  }
  util::install_drain_signals();
  // SIGHUP config reload for the in-process serve paths; the sharded parent
  // runs its own watcher (it also has to push "!cfg" frames to workers).
  std::thread reload_thread;
  if (!options_.config_path.empty() && options_.workers == 0) {
    util::install_reload_signal();
    reload_thread = std::thread([this] { reload_watch_loop(); });
  }
  const auto stop_reload_thread = [&] {
    if (reload_thread.joinable()) {
      reload_stop_.store(true, std::memory_order_relaxed);
      reload_thread.join();
    }
  };
  if (has_listener) {
    std::string listen_error;
    int listen_fd = -1;
    if (!options_.tcp_address.empty()) {
      int port = 0;
      listen_fd = listen_tcp(options_.tcp_address, &port, listen_error);
      if (listen_fd >= 0) {
        // The resolved endpoint (not the requested one): with port 0 this
        // line is how tests and CI discover where the server landed.
        std::string host = "127.0.0.1";
        if (const size_t colon = options_.tcp_address.rfind(':');
            colon != std::string::npos) {
          host = options_.tcp_address.substr(0, colon);
        }
        err << "serve: listening on " << host << ":" << port << "\n";
      }
    } else {
      listen_fd = listen_unix(options_.socket_path, listen_error);
      if (listen_fd >= 0) {
        err << "serve: listening on " << options_.socket_path << "\n";
      }
    }
    if (listen_fd < 0) {
      err << "serve: " << listen_error << "\n";
      stop_reload_thread();
      return 2;
    }
    const int rc = options_.workers > 0 ? run_sharded(listen_fd, options_, err)
                                        : serve_listener(listen_fd, err);
    ::close(listen_fd);
    if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
    stop_reload_thread();
    return rc;
  }
  const int rc = serve_fd(STDIN_FILENO, out);
  stop_reload_thread();
  return rc;
}

int run_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  ServerOptions options;
  try {
    for (size_t i = 0; i < args.size(); ++i) {
      const std::string& flag = args[i];
      const auto next_value = [&]() -> const std::string& {
        if (++i >= args.size()) {
          throw std::runtime_error("flag " + flag + " needs a value");
        }
        return args[i];
      };
      if (flag == "--input") {
        options.input_path = next_value();
      } else if (flag == "--socket") {
        options.socket_path = next_value();
      } else if (flag == "--tcp") {
        options.tcp_address = next_value();
      } else if (flag == "--workers") {
        options.workers = static_cast<int>(std::stol(next_value()));
      } else if (flag == "--max-connections") {
        options.max_connections = std::max<size_t>(1, std::stoul(next_value()));
      } else if (flag == "--max-inflight") {
        options.max_inflight = static_cast<size_t>(std::stoul(next_value()));
      } else if (flag == "--max-load-mb") {
        options.max_load_mb = static_cast<size_t>(std::stoul(next_value()));
      } else if (flag == "--disk-cache") {
        options.disk_cache_dir = next_value();
      } else if (flag == "--disk-cache-mb") {
        options.disk_cache_mb = static_cast<size_t>(std::stoul(next_value()));
      } else if (flag == "--checkpoint") {
        options.checkpoint_dir = next_value();
      } else if (flag == "--checkpoint-interval-ms") {
        options.checkpoint_interval_ms =
            static_cast<uint64_t>(std::stoull(next_value()));
      } else if (flag == "--watchdog-ms") {
        options.watchdog_ms = static_cast<uint64_t>(std::stoull(next_value()));
      } else if (flag == "--config") {
        options.config_path = next_value();
      } else if (flag == "--cache-capacity") {
        options.cache_capacity = static_cast<size_t>(std::stoul(next_value()));
      } else if (flag == "--default-timeout-ms") {
        options.default_timeout_ms = std::stoll(next_value());
      } else if (flag == "--max-batch") {
        options.max_batch = std::max<size_t>(1, std::stoul(next_value()));
      } else if (flag == "--threads") {
        options.threads = static_cast<int>(std::stol(next_value()));
      } else if (flag == "--deterministic") {
        options.deterministic = true;
      } else {
        throw std::runtime_error("unknown serve flag '" + flag + "'");
      }
    }
  } catch (const std::exception& error) {
    err << "serve: " << error.what() << "\n";
    return 2;
  }
  try {
    Server server(std::move(options));
    return server.run(out, err);
  } catch (const std::exception& error) {
    err << "serve: " << error.what() << "\n";
    return 2;
  }
}

}  // namespace autosec::service
