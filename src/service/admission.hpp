// Admission control for `autosec serve`: decide at the door, never abort
// mid-flight. Each request asks for a ticket before any engine work starts;
// when the server is saturated — too many requests in flight, or the
// estimated memory of one more request would cross the load ceiling — the
// request is shed with a structured `overloaded` error carrying
// retry_after_ms, and the requests already admitted run to completion
// untouched.
//
// Memory gating reuses util::ResourceBudget: each admitted request reserves
// an estimated working-set size via try_charge_bytes (an EWMA of the peak
// bytes observed on completed requests, so the estimate tracks the actual
// workload), and releases it when its ticket is destroyed. retry_after_ms is
// an EWMA of observed request wall time — "come back after roughly one
// request's worth of work has drained" — clamped to [50ms, 10s], or a fixed
// 100 in deterministic mode so golden tests stay byte-stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>

#include "util/budget.hpp"

namespace autosec::service {

struct AdmissionOptions {
  size_t max_inflight = 0;  ///< 0 = unlimited concurrent admitted requests
  size_t max_load_mb = 0;   ///< 0 = no memory gate
  bool deterministic = false;  ///< fixed retry_after_ms for golden output
};

class AdmissionController;

/// RAII admission grant: releases the in-flight slot and the reserved bytes,
/// and feeds the observed wall time / peak bytes back into the controller's
/// estimates, when destroyed.
class Ticket {
 public:
  Ticket() = default;
  Ticket(Ticket&& other) noexcept
      : controller_(other.controller_), reserved_(other.reserved_) {
    other.controller_ = nullptr;
  }
  Ticket& operator=(Ticket&& other) noexcept;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket() { release(); }

  /// Report what the request actually used, before destruction, so the
  /// controller's estimates learn from it. Optional — a ticket destroyed
  /// without observations still releases its slot and reservation.
  void observe(double wall_ms, size_t peak_bytes);

 private:
  friend class AdmissionController;
  Ticket(AdmissionController* controller, size_t reserved)
      : controller_(controller), reserved_(reserved) {}
  void release();

  AdmissionController* controller_ = nullptr;
  size_t reserved_ = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Try to admit one request. On success returns a ticket (keep it alive for
  /// the request's duration). On shed returns nullopt and fills
  /// `*retry_after_ms` with the suggested client backoff.
  std::optional<Ticket> try_admit(int64_t* retry_after_ms);

  /// Hot config reload: swap the admission ceilings on a live controller.
  /// Requests already admitted keep their slots and reservations (never abort
  /// mid-flight); the new limits gate every admission from now on.
  void set_limits(size_t max_inflight, size_t max_load_mb);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
    size_t inflight = 0;
    size_t reserved_bytes = 0;
    size_t max_inflight = 0;
    size_t max_load_mb = 0;
  };
  Stats stats() const;

 private:
  friend class Ticket;
  void finish(size_t reserved);
  void observe(double wall_ms, size_t peak_bytes);
  size_t reservation_estimate() const;
  int64_t retry_estimate() const;

  AdmissionOptions options_;
  util::ResourceBudget load_;  ///< byte gate (states dimension unused)

  mutable std::mutex mutex_;
  size_t inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  double ewma_peak_bytes_ = 0;  ///< 0 until the first observation
  double ewma_wall_ms_ = 0;
};

}  // namespace autosec::service
