#include "service/shard.hpp"

#include <dirent.h>
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "service/config.hpp"
#include "service/transport.hpp"
#include "util/drain.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/progress.hpp"

namespace autosec::service {

namespace {

constexpr int kMaxResends = 2;        ///< per request, before internal_error
constexpr uint64_t kMaxRespawns = 16; ///< per shard, before it is left dead
/// Worker heartbeat period. The watchdog deadline (--watchdog-ms) should be
/// several multiples of this; the supervisor only counts a heartbeat as
/// progress when its progress epoch advanced.
constexpr int kHeartbeatMs = 250;

uint64_t steady_ms() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Close every inherited descriptor except stdio and `keep`. Called in a
/// freshly forked worker: the child must not hold the listener, the client
/// connections, or the other workers' pipes open (a held pipe would mask
/// their EOF at drain time).
void close_inherited_fds(int keep) {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return;
  const int dir_fd = ::dirfd(dir);
  std::vector<int> to_close;
  while (dirent* entry = ::readdir(dir)) {
    char* end = nullptr;
    const long fd = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;
    if (fd <= 2 || fd == keep || fd == dir_fd) continue;
    to_close.push_back(static_cast<int>(fd));
  }
  ::closedir(dir);
  for (const int fd : to_close) ::close(fd);
}

/// Worker child main loop: read "<seq> <request>" frames, answer with
/// "<seq> <response>" frames, exit 0 on EOF (the parent closing the pipe is
/// the drain protocol). Control frames ride the same pipe with a "!" token
/// where the sequence number goes: the worker emits "!hb <epoch>" heartbeats
/// (its util::progress epoch — advancing only while the engine crosses
/// safepoints) and accepts "!cfg <json>" pushes, applying the parent's
/// hot-reloaded configuration without restarting. Never returns.
[[noreturn]] void run_worker(int fd, const ServerOptions& options) {
  try {
    // The parent's drain handling does not apply here: a worker exits on
    // EOF, and an operator's stray signal just makes the parent respawn it.
    // SIGHUP targets the parent's config reload; a worker that shares the
    // process group must not die from it (it gets "!cfg" frames instead).
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGHUP, SIG_IGN);
    ignore_sigpipe();
    // The inherited pool object's threads do not exist in this process.
    util::abandon_pool_after_fork();
    close_inherited_fds(fd);

    Server server(options);
    // Responses and heartbeats interleave on one pipe; the mutex keeps every
    // frame intact.
    auto write_mutex = std::make_shared<std::mutex>();
    std::thread heartbeat([fd, write_mutex] {
      while (true) {
        std::this_thread::sleep_for(std::chrono::milliseconds(kHeartbeatMs));
        std::string frame = "!hb ";
        frame += std::to_string(util::progress::epoch());
        frame += '\n';
        std::lock_guard<std::mutex> lock(*write_mutex);
        if (!write_fd_all(fd, frame)) return;  // parent gone; main loop exits
      }
    });
    heartbeat.detach();  // _exit tears the process down, thread included

    std::string buffer;
    char chunk[65536];
    while (true) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got < 0) {
        if (errno == EINTR) continue;
        ::_exit(1);
      }
      if (got == 0) ::_exit(0);  // parent closed the pipe: drain complete
      buffer.append(chunk, static_cast<size_t>(got));

      std::vector<std::string> seqs;
      std::vector<std::string> lines;
      size_t pos = 0;
      while (true) {
        const size_t newline = buffer.find('\n', pos);
        if (newline == std::string::npos) break;
        const std::string_view frame(buffer.data() + pos, newline - pos);
        pos = newline + 1;
        const size_t space = frame.find(' ');
        if (space == std::string_view::npos) continue;  // malformed frame
        const std::string_view token = frame.substr(0, space);
        if (!token.empty() && token.front() == '!') {
          // Control frame: consumed here, never answered.
          if (token == "!cfg") {
            server.apply_config_text(std::string(frame.substr(space + 1)));
          }
          continue;
        }
        seqs.emplace_back(token);
        lines.emplace_back(frame.substr(space + 1));
      }
      buffer.erase(0, pos);
      if (lines.empty()) continue;

      const std::vector<std::string> responses = server.handle_batch(lines);
      std::string out;
      for (size_t i = 0; i < responses.size(); ++i) {
        out += seqs[i];
        out += ' ';
        out += responses[i];
        out += '\n';
      }
      std::lock_guard<std::mutex> lock(*write_mutex);
      if (!write_fd_all(fd, out)) ::_exit(1);
    }
  } catch (...) {
    ::_exit(1);
  }
}

/// One response waiting for its turn in a connection's output order.
struct Slot {
  std::string response;
  bool ready = false;
};

struct Worker {
  // pid/fd/generation are guarded by write_mutex, which also serializes
  // frame writes — a pending registered under the lock carries the
  // generation its frame was actually sent to.
  std::mutex write_mutex;
  pid_t pid = -1;
  int fd = -1;
  uint64_t generation = 0;
  uint64_t respawns = 0;
  std::thread reader;
  /// Liveness for the watchdog: steady_ms of the last observed progress —
  /// a response frame, a heartbeat whose epoch advanced, a dispatch, or a
  /// respawn. A worker holding pending requests whose progress stalls past
  /// the watchdog deadline is presumed hung and SIGKILLed.
  std::atomic<uint64_t> last_progress_ms{0};
  std::atomic<uint64_t> last_epoch{0};
  std::atomic<uint64_t> watchdog_kills{0};
};

class ShardSupervisor;

/// Per-connection ordering buffer: responses arrive from worker-reader
/// threads in completion order and are released to the sink in input order.
class ShardConnection : public ConnectionHandler {
 public:
  ShardConnection(ShardSupervisor& supervisor,
                  std::shared_ptr<ConnectionSink> sink)
      : supervisor_(supervisor), sink_(std::move(sink)) {}

  void handle_lines(std::vector<std::string> lines) override;

  void finish() override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return order_.empty(); });
  }

  std::shared_ptr<Slot> enqueue() {
    auto slot = std::make_shared<Slot>();
    std::lock_guard<std::mutex> lock(mutex_);
    order_.push_back(slot);
    return slot;
  }

  void deliver(const std::shared_ptr<Slot>& slot, std::string response) {
    std::lock_guard<std::mutex> lock(mutex_);
    slot->response = std::move(response);
    slot->ready = true;
    // Release the ready prefix: input order, whatever order workers finish.
    while (!order_.empty() && order_.front()->ready) {
      sink_->write_line(order_.front()->response);
      order_.pop_front();
    }
    if (order_.empty()) cv_.notify_all();
  }

 private:
  ShardSupervisor& supervisor_;
  std::shared_ptr<ConnectionSink> sink_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Slot>> order_;
};

class ShardSupervisor {
 public:
  ShardSupervisor(int listen_fd, const ServerOptions& options, std::ostream& err)
      : listen_fd_(listen_fd), options_(options), err_(err) {
    worker_options_ = options;
    worker_options_.workers = 0;
    worker_options_.tcp_address.clear();
    worker_options_.socket_path.clear();
    worker_options_.input_path.clear();
    // Workers never read the config file themselves: the parent validates it
    // once and pushes the canonical document as a "!cfg" frame (including to
    // respawned workers). A file that goes bad between reloads can therefore
    // never crash-loop a respawn.
    worker_options_.config_path.clear();
    watchdog_ms_.store(options.watchdog_ms, std::memory_order_relaxed);
    max_connections_ =
        std::make_shared<std::atomic<size_t>>(options.max_connections);
    for (int i = 0; i < options.workers; ++i) {
      workers_.push_back(std::make_unique<Worker>());
    }
  }

  int run() {
    // Fail fast on a bad disk-cache directory here, in the parent, instead
    // of letting every worker crash-loop on it after fork.
    if (!worker_options_.disk_cache_dir.empty()) {
      try {
        DiskCache probe(worker_options_.disk_cache_dir);
      } catch (const std::exception& error) {
        log(std::string("serve: ") + error.what());
        return 2;
      }
    }
    // The startup config travels to every worker (including respawned ones)
    // as a "!cfg" frame; a bad file fails startup loudly, like the Server.
    if (!options_.config_path.empty()) {
      try {
        const ServeConfig config = ServeConfig::from_file(options_.config_path);
        apply_config_locally(config);
        std::lock_guard<std::mutex> lock(config_mutex_);
        current_config_ = config.canonical();
      } catch (const std::exception& error) {
        log(std::string("serve: ") + error.what());
        return 2;
      }
    }
    for (size_t i = 0; i < workers_.size(); ++i) {
      try {
        spawn_worker(i);
      } catch (const std::exception& error) {
        log(std::string("serve: ") + error.what());
        shutdown_workers();
        return 2;
      }
    }
    reaper_ = std::thread([this] { reaper_loop(); });
    watchdog_ = std::thread([this] { watchdog_loop(); });
    if (!options_.config_path.empty()) {
      util::install_reload_signal();
      reloader_ = std::thread([this] { reload_loop(); });
    }
    log("serve: " + std::to_string(workers_.size()) + " workers ready");

    AcceptLoopOptions accept_options;
    accept_options.max_connections = options_.max_connections;
    accept_options.dynamic_max_connections = max_connections_;
    accept_options.overflow_line = [this] {
      ErrorInfo error{"overloaded",
                      "connection limit reached; retry after retry_after_ms",
                      ""};
      error.retry_after_ms = options_.deterministic ? 100 : 1000;
      return synthetic_envelope("", "", error);
    };
    serve_connections(
        listen_fd_, accept_options,
        [this](std::shared_ptr<ConnectionSink> sink) {
          return std::make_unique<ShardConnection>(*this, std::move(sink));
        },
        err_);

    // Every connection has been answered; tell the workers to exit by
    // closing their pipes and reap them. The empty critical section lets any
    // in-flight respawn finish before the pipes are torn down.
    shutting_down_.store(true, std::memory_order_relaxed);
    { std::lock_guard<std::mutex> guard(respawn_mutex_); }
    if (watchdog_.joinable()) watchdog_.join();
    if (reloader_.joinable()) reloader_.join();
    shutdown_workers();
    if (reaper_.joinable()) reaper_.join();
    log("serve: drained, shutting down");
    return 0;
  }

  /// Route one request line to a worker and register it for delivery.
  void submit(ShardConnection& conn, std::string line) {
    const std::shared_ptr<Slot> slot = conn.enqueue();
    const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    const size_t index = route(line);
    Worker& worker = *workers_[index];

    std::unique_lock<std::mutex> write_lock(worker.write_mutex);
    if (worker.fd < 0) {
      // Shard permanently dead (respawn budget exhausted): answer directly.
      write_lock.unlock();
      conn.deliver(slot, synthesize_error(line));
      return;
    }
    {
      std::lock_guard<std::mutex> pending_lock(pending_mutex_);
      Pending pending;
      pending.line = line;
      pending.worker = index;
      pending.generation = worker.generation;
      pending.conn = &conn;
      pending.slot = slot;
      pending_.emplace(seq, std::move(pending));
    }
    std::string frame = std::to_string(seq);
    frame += ' ';
    frame += line;
    frame += '\n';
    // Dispatch counts as progress: the watchdog clock starts at the hand-off,
    // not at some stale mark from the previous request.
    worker.last_progress_ms.store(steady_ms(), std::memory_order_relaxed);
    // A failed write means the worker just died: the pending entry stays and
    // the reaper resends it to the respawned worker.
    write_fd_all(worker.fd, frame);
  }

 private:
  struct Pending {
    std::string line;
    size_t worker = 0;
    uint64_t generation = 0;
    int resends = 0;
    ShardConnection* conn = nullptr;
    std::shared_ptr<Slot> slot;
  };

  void log(const std::string& message) {
    std::lock_guard<std::mutex> lock(err_mutex_);
    err_ << message << "\n";
    err_.flush();
  }

  /// Architecture-sticky routing: same model path → same worker → hot
  /// session cache. Lines without a routable architecture (status,
  /// malformed) round-robin.
  size_t route(const std::string& line) {
    const size_t count = workers_.size();
    try {
      const util::JsonValue doc = util::JsonValue::parse(line);
      if (const util::JsonValue* arch = doc.find("architecture");
          arch != nullptr && arch->is_string() && !arch->as_string().empty()) {
        return static_cast<size_t>(fnv1a64(arch->as_string()) % count);
      }
    } catch (const std::exception&) {
      // Unroutable request: the worker will answer bad_request.
    }
    return round_robin_.fetch_add(1, std::memory_order_relaxed) % count;
  }

  std::string synthesize_error(const std::string& line) const {
    const ParseResult parsed = parse_request(line);
    return synthetic_envelope(
        parsed.id, parsed.op_text,
        {"internal_error", "worker crashed while handling the request", ""});
  }

  void spawn_worker(size_t index) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
      throw std::runtime_error(std::string("socketpair(): ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error(std::string("fork(): ") + std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      run_worker(fds[1], worker_options_);  // never returns
    }
    ::close(fds[1]);
    Worker& worker = *workers_[index];
    {
      std::lock_guard<std::mutex> lock(worker.write_mutex);
      worker.pid = pid;
      worker.fd = fds[0];
      ++worker.generation;
      worker.last_progress_ms.store(steady_ms(), std::memory_order_relaxed);
      worker.last_epoch.store(0, std::memory_order_relaxed);
      // A worker spawned after a reload must run the reloaded config, not
      // the flags it inherited through fork.
      std::string config;
      {
        std::lock_guard<std::mutex> config_lock(config_mutex_);
        config = current_config_;
      }
      if (!config.empty()) {
        write_fd_all(worker.fd, "!cfg " + config + "\n");
      }
    }
    worker.reader = std::thread([this, index, fd = fds[0]] {
      reader_loop(index, fd);
    });
  }

  void reader_loop(size_t index, int fd) {
    std::string buffer;
    char chunk[65536];
    while (true) {
      const ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got < 0) {
        if (errno == EINTR) continue;
        break;
      }
      // EOF: the worker exited. Everything it wrote before dying was drained
      // above; an incomplete trailing frame is dropped, so its request stays
      // pending and is resent.
      if (got == 0) break;
      buffer.append(chunk, static_cast<size_t>(got));
      size_t pos = 0;
      while (true) {
        const size_t newline = buffer.find('\n', pos);
        if (newline == std::string::npos) break;
        handle_frame(index, buffer.substr(pos, newline - pos));
        pos = newline + 1;
      }
      buffer.erase(0, pos);
    }
  }

  void handle_frame(size_t index, const std::string& frame) {
    const size_t space = frame.find(' ');
    if (space == std::string::npos) return;
    Worker& worker = *workers_[index];
    if (frame.front() == '!') {
      // "!hb <epoch>": a heartbeat only counts as progress when the worker's
      // engine crossed a safepoint since the last one — a wedged solve keeps
      // the heartbeat thread alive but freezes the epoch, which is exactly
      // what the watchdog must catch.
      if (frame.compare(0, space, "!hb") == 0) {
        char* end = nullptr;
        const uint64_t epoch = std::strtoull(frame.c_str() + space + 1, &end, 10);
        if (end == frame.c_str() + space + 1) return;
        if (epoch != worker.last_epoch.exchange(epoch, std::memory_order_relaxed)) {
          worker.last_progress_ms.store(steady_ms(), std::memory_order_relaxed);
        }
      }
      return;
    }
    char* end = nullptr;
    const uint64_t seq = std::strtoull(frame.c_str(), &end, 10);
    if (end != frame.c_str() + space) return;
    worker.last_progress_ms.store(steady_ms(), std::memory_order_relaxed);
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      const auto it = pending_.find(seq);
      // Absent = already answered (a resend raced the original worker's last
      // response). Erasing under the lock is what makes delivery
      // exactly-once: work may run twice, envelopes never do.
      if (it == pending_.end()) return;
      pending = std::move(it->second);
      pending_.erase(it);
    }
    pending.conn->deliver(pending.slot, frame.substr(space + 1));
  }

  void reaper_loop() {
    while (true) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, 0);
      if (pid < 0) {
        if (errno == EINTR) continue;
        break;  // ECHILD: every worker reaped
      }
      if (shutting_down_.load(std::memory_order_relaxed)) continue;
      size_t index = workers_.size();
      for (size_t i = 0; i < workers_.size(); ++i) {
        std::lock_guard<std::mutex> lock(workers_[i]->write_mutex);
        if (workers_[i]->pid == pid) {
          index = i;
          break;
        }
      }
      if (index == workers_.size()) continue;  // not one of ours
      respawn(index, pid);
    }
  }

  void respawn(size_t index, pid_t old_pid) {
    // Serialized against the drain sequence: once shutting_down_ is set and
    // this mutex observed free, no new worker (or reader thread) appears
    // behind shutdown_workers()' back.
    std::lock_guard<std::mutex> guard(respawn_mutex_);
    if (shutting_down_.load(std::memory_order_relaxed)) return;
    Worker& worker = *workers_[index];
    // Join the reader FIRST: it drains every response the dead worker wrote
    // before exiting, so a request that was actually answered is never
    // resent (and its envelope never duplicated).
    if (worker.reader.joinable()) worker.reader.join();
    {
      std::lock_guard<std::mutex> lock(worker.write_mutex);
      if (worker.fd >= 0) ::close(worker.fd);
      worker.fd = -1;
      worker.pid = -1;
    }

    bool revived = false;
    if (++worker.respawns <= kMaxRespawns) {
      // Fault-injection env specs (AUTOSEC_FAULT) must not survive into the
      // replacement: a respawned worker re-arming the same hang or crash
      // site would die again immediately, burning the respawn budget on one
      // injected fault. The first spawn inherits the env untouched — that is
      // how the chaos harness arms its faults in the first place.
      ::unsetenv("AUTOSEC_FAULT");
      try {
        spawn_worker(index);
        revived = true;
      } catch (const std::exception& error) {
        log(std::string("serve: cannot respawn worker: ") + error.what());
      }
    } else {
      log("serve: shard " + std::to_string(index) +
          " exceeded its respawn budget; leaving it down");
    }
    if (revived) {
      std::lock_guard<std::mutex> lock(worker.write_mutex);
      log("serve: worker " + std::to_string(old_pid) + " died; respawned shard " +
          std::to_string(index) + " as " + std::to_string(worker.pid));
    }
    resend_pending(index, revived);
  }

  /// After a respawn (or a permanent shard death): every request the old
  /// incarnation never answered is resent to the new one, except requests
  /// over the resend cap, which get a synthesized internal_error — one
  /// poisoned request must not crash the shard forever.
  void resend_pending(size_t index, bool revived) {
    Worker& worker = *workers_[index];
    std::vector<Pending> failed;
    {
      std::lock_guard<std::mutex> write_lock(worker.write_mutex);
      const uint64_t generation = worker.generation;
      std::string frames;
      std::lock_guard<std::mutex> pending_lock(pending_mutex_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        Pending& pending = it->second;
        if (pending.worker != index || pending.generation == generation) {
          ++it;
          continue;
        }
        if (!revived || pending.resends >= kMaxResends) {
          failed.push_back(std::move(pending));
          it = pending_.erase(it);
          continue;
        }
        ++pending.resends;
        pending.generation = generation;
        frames += std::to_string(it->first);
        frames += ' ';
        frames += pending.line;
        frames += '\n';
        ++it;
      }
      if (!frames.empty() && worker.fd >= 0) write_fd_all(worker.fd, frames);
    }
    for (const Pending& pending : failed) {
      pending.conn->deliver(pending.slot, synthesize_error(pending.line));
    }
  }

  /// Does the shard hold requests the client is still waiting on? Only then
  /// may the watchdog presume a stalled epoch means a hang — an idle worker
  /// legitimately reports no progress.
  bool has_pending(size_t index) {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (const auto& [seq, pending] : pending_) {
      if (pending.worker == index) return true;
    }
    return false;
  }

  /// Hung-worker detection: a worker with dispatched requests whose progress
  /// epoch has not advanced within the deadline is SIGKILLed; the reaper then
  /// respawns it and resends its pending requests — the same exactly-once
  /// path a crash takes. Heartbeats keep arriving from a worker wedged in a
  /// solve (the heartbeat thread is separate), but their epoch is frozen, so
  /// they do not reset the clock.
  void watchdog_loop() {
    while (!shutting_down_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kHeartbeatMs / 2));
      const uint64_t deadline = watchdog_ms_.load(std::memory_order_relaxed);
      if (deadline == 0) continue;
      const uint64_t now = steady_ms();
      for (size_t i = 0; i < workers_.size(); ++i) {
        Worker& worker = *workers_[i];
        pid_t pid = -1;
        {
          std::lock_guard<std::mutex> lock(worker.write_mutex);
          pid = worker.pid;
        }
        if (pid < 0) continue;
        const uint64_t last =
            worker.last_progress_ms.load(std::memory_order_relaxed);
        if (now - last < deadline) continue;
        if (!has_pending(i)) continue;
        // Reset the clock under the lock, re-checking the pid: the reaper may
        // already have respawned this shard while we looked.
        std::lock_guard<std::mutex> lock(worker.write_mutex);
        if (worker.pid != pid) continue;
        worker.last_progress_ms.store(now, std::memory_order_relaxed);
        worker.watchdog_kills.fetch_add(1, std::memory_order_relaxed);
        log("serve: watchdog: worker " + std::to_string(pid) + " (shard " +
            std::to_string(i) + ") made no progress in " +
            std::to_string(now - last) + "ms; killing it");
        ::kill(pid, SIGKILL);  // the reaper respawns and resends
      }
    }
  }

  /// Parent-side knobs a config document can retune: the accept-loop cap and
  /// the watchdog deadline. Everything else is worker business, forwarded as
  /// a "!cfg" frame.
  void apply_config_locally(const ServeConfig& config) {
    if (config.max_connections) {
      max_connections_->store(*config.max_connections,
                              std::memory_order_relaxed);
    }
    if (config.watchdog_ms) {
      watchdog_ms_.store(*config.watchdog_ms, std::memory_order_relaxed);
    }
  }

  /// SIGHUP watcher: re-read the config file, apply the parent-side knobs,
  /// and push the canonical document to every live worker. A malformed file
  /// is logged and the previous configuration stays in force everywhere.
  void reload_loop() {
    while (!shutting_down_.load(std::memory_order_relaxed)) {
      pollfd fds[1] = {{util::reload_fd(), POLLIN, 0}};
      ::poll(fds, 1, 200);
      if (!util::consume_reload()) continue;
      ServeConfig config;
      try {
        config = ServeConfig::from_file(options_.config_path);
      } catch (const std::exception& error) {
        log(std::string("serve: config reload rejected (previous "
                        "configuration stays in force): ") +
            error.what());
        continue;
      }
      apply_config_locally(config);
      const std::string canonical = config.canonical();
      {
        std::lock_guard<std::mutex> lock(config_mutex_);
        current_config_ = canonical;
      }
      for (const std::unique_ptr<Worker>& worker : workers_) {
        std::lock_guard<std::mutex> lock(worker->write_mutex);
        if (worker->fd >= 0) {
          write_fd_all(worker->fd, "!cfg " + canonical + "\n");
        }
      }
      log("serve: config reloaded from '" + options_.config_path +
          "' and pushed to workers");
    }
  }

  void shutdown_workers() {
    for (const std::unique_ptr<Worker>& worker : workers_) {
      std::lock_guard<std::mutex> lock(worker->write_mutex);
      // shutdown() (not close) wakes the blocked reader with EOF and tells
      // the child to exit; the fd itself is closed after the reader joined.
      if (worker->fd >= 0) ::shutdown(worker->fd, SHUT_RDWR);
    }
    for (const std::unique_ptr<Worker>& worker : workers_) {
      if (worker->reader.joinable()) worker->reader.join();
      std::lock_guard<std::mutex> lock(worker->write_mutex);
      if (worker->fd >= 0) ::close(worker->fd);
      worker->fd = -1;
    }
  }

  int listen_fd_;
  ServerOptions options_;
  ServerOptions worker_options_;
  std::ostream& err_;
  std::mutex err_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread reaper_;
  std::thread watchdog_;
  std::thread reloader_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<size_t> round_robin_{0};
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> watchdog_ms_{0};
  std::shared_ptr<std::atomic<size_t>> max_connections_;
  std::mutex config_mutex_;
  std::string current_config_;  ///< canonical "!cfg" payload for new workers
  std::mutex respawn_mutex_;
  std::mutex pending_mutex_;
  std::map<uint64_t, Pending> pending_;
};

void ShardConnection::handle_lines(std::vector<std::string> lines) {
  for (std::string& line : lines) supervisor_.submit(*this, std::move(line));
}

}  // namespace

int run_sharded(int listen_fd, const ServerOptions& options, std::ostream& err) {
  ShardSupervisor supervisor(listen_fd, options, err);
  return supervisor.run();
}

}  // namespace autosec::service
