// Bounded LRU cache of engine sessions for `autosec serve`. Entries are
// keyed by (architecture content digest, engine-options key, model kind) —
// see SessionCache::make_key — so a repeated request for the same
// architecture and knobs reuses the session's cached compile/explore/
// uniformize/steady stages instead of rebuilding them.
//
// Thread model: the cache map is guarded by its own mutex; each entry
// carries a per-entry mutex that the server locks for the duration of a
// request, because csl::EngineSession::prepare() is not itself thread-safe.
// Requests hitting DIFFERENT entries run fully concurrently; requests on the
// same entry serialize (and the second one then hits every cached stage).
// Eviction drops the cache's reference only — a request still holding the
// shared_ptr finishes safely on the evicted entry.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <functional>

#include "automotive/analyzer.hpp"

namespace autosec::service {

/// FNV-1a 64-bit digest; used for architecture file contents so path-based
/// repeats (and identical content under different paths) share a key.
uint64_t fnv1a64(std::string_view text);

class SessionCache {
 public:
  struct Entry {
    std::mutex mutex;  ///< serializes requests on this entry's session
    automotive::BatchSession batch;  ///< analyze/sweep grid or single pair
    uint64_t hits = 0;
  };

  struct Stats {
    size_t entries = 0;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  explicit SessionCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Look up `key`, building a fresh entry via `build` on a miss (the build
  /// runs outside the cache lock; concurrent misses on the same key may both
  /// build, and the first to insert wins). `*hit` reports whether the
  /// returned entry existed before the call.
  std::shared_ptr<Entry> acquire(
      const std::string& key,
      const std::function<automotive::BatchSession()>& build, bool* hit);

  /// Drop `key` from the cache if present. Used after an engine-side failure
  /// (oom, solver_diverged, ...) so a poisoned session is rebuilt from
  /// scratch on the next request instead of being served from cache. Only
  /// the cache's reference is dropped — a request still holding the
  /// shared_ptr finishes safely.
  void evict(const std::string& key);

  /// Hot config reload: resize the cache. Shrinking trims least-recently-used
  /// entries immediately (requests holding the shared_ptr finish safely);
  /// growing just raises the ceiling. Capacity 0 is clamped to 1.
  void set_capacity(size_t capacity);

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  /// Front = most recently used. A list keeps LRU reordering O(1)-ish at the
  /// handful-of-entries scale a serve cache runs at.
  std::list<std::pair<std::string, std::shared_ptr<Entry>>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace autosec::service
