#include "service/session_cache.hpp"

#include <algorithm>
#include <utility>

namespace autosec::service {

uint64_t fnv1a64(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::shared_ptr<SessionCache::Entry> SessionCache::acquire(
    const std::string& key,
    const std::function<automotive::BatchSession()>& build, bool* hit) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);  // bump to front
        hits_ += 1;
        entries_.front().second->hits += 1;
        if (hit) *hit = true;
        return entries_.front().second;
      }
    }
    misses_ += 1;
  }

  // Build outside the lock: a model transform can be expensive and must not
  // stall requests hitting other entries.
  auto entry = std::make_shared<Entry>();
  entry->batch = build();

  std::lock_guard<std::mutex> lock(mutex_);
  // A concurrent miss may have inserted the key meanwhile; reuse that entry
  // (first insert wins) so both requests end up on one session.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.splice(entries_.begin(), entries_, it);
      if (hit) *hit = true;
      return entries_.front().second;
    }
  }
  entries_.emplace_front(key, entry);
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    evictions_ += 1;
  }
  if (hit) *hit = false;
  return entry;
}

void SessionCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    evictions_ += 1;
  }
}

void SessionCache::evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      evictions_ += 1;
      return;
    }
  }
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.entries = entries_.size();
  stats.capacity = capacity_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  return stats;
}

}  // namespace autosec::service
