// The v1 serve protocol: newline-delimited JSON requests and responses over
// stdin, a file, or a Unix socket (see service/server.hpp). Every response —
// success or error — carries the same envelope:
//
//   {"schema_version": "autosec-serve-v1", "id": "...", "op": "...",
//    "ok": true|false, "result": {...} | "error": {...}, "metrics": {...}}
//
// The error object is structured ({"code", "message", "stage"?, "detail"?})
// with codes
//   bad_request              malformed JSON, unknown op, invalid/missing fields
//   timeout                  the request's deadline expired (stage names the
//                            engine stage that observed it)
//   engine_error             the engine rejected the model or a solve failed
//   shutting_down            the service is draining (SIGTERM)
//   overloaded               admission control shed the request before any
//                            engine work started; the error object carries
//                            "retry_after_ms", the suggested client backoff
//                            (requests already running are never aborted)
//   state_budget_exceeded    exploration hit the request's max_states ceiling
//   memory_budget_exceeded   tracked engine allocations hit max_memory_mb
//   oom                      a real allocation failure inside a stage
//   solver_diverged          every solver rung failed to converge
//   numerical_error          NaN/Inf detected in a result vector
//   cancelled                cooperative cancellation other than a deadline
//   internal_error           an unexpected exception crossed the dispatcher
// Engine-side failures (the codes below shutting_down) carry an optional
// "detail" object with the partial progress the failing stage reported:
// states_explored, frontier_size, last_command, iterations, residual, limit,
// charged_bytes — only the fields the stage could fill. After such a failure
// the offending session-cache entry is evicted; the worker keeps serving.
//
// The metrics object makes cache behaviour observable per request:
//   {"wall_seconds": S, "session_cache": "hit"|"miss"|"none",
//    "disk_cache": "hit"|"miss"|"none", "explores": N, "states": N,
//    "solver_fallbacks": N, "engine": "..."}
// — "explores" is the state-space explorations this request added to its
// session; a repeated analyze answered from the session cache reports
// session_cache "hit" and explores 0. "disk_cache" reports the persistent
// result cache (service/disk_cache.hpp): "hit" means the whole result was
// replayed from disk (explores 0, no engine work), "none" means no disk
// cache is configured or the op is not cacheable. "solver_fallbacks" counts
// solver rungs taken beyond the first (a degraded but correct solve).
// "engine" is the resolved state-store backend ("classic" | "compact";
// "none" for requests that build no state space, e.g. status/diagnose).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automotive/architecture.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sell_matrix.hpp"
#include "symbolic/model.hpp"
#include "symbolic/state_store.hpp"

namespace autosec::service {

inline constexpr std::string_view kSchemaVersion = "autosec-serve-v1";

enum class Op { kAnalyze, kCheck, kSweep, kDiagnose, kStatus };

/// The op token as it appears on the wire ("analyze", "check", ...).
std::string_view op_name(Op op);

/// Structured error object of the v1 envelope.
struct ErrorInfo {
  ErrorInfo() = default;
  ErrorInfo(std::string code, std::string message, std::string stage)
      : code(std::move(code)), message(std::move(message)),
        stage(std::move(stage)) {}

  std::string code;     ///< bad_request | timeout | engine_error | shutting_down
  std::string message;  ///< human-readable detail
  std::string stage;    ///< engine stage for timeouts; empty otherwise
  /// Suggested client backoff; present only on `overloaded` responses.
  std::optional<int64_t> retry_after_ms;
};

/// A parsed v1 request. Fields not used by the request's op are left at
/// their defaults; see docs/serving.md for the full field matrix.
struct Request {
  std::string id;  ///< echoed verbatim; empty when the client sent none
  Op op = Op::kStatus;

  /// Path to the .arch file (every op except status).
  std::string architecture;
  /// analyze: the (message, category) grid; empty means all messages /
  /// all three categories.
  std::vector<std::string> messages;
  std::vector<automotive::SecurityCategory> categories;
  /// check / sweep / diagnose: the single target pair.
  std::string message;
  automotive::SecurityCategory category =
      automotive::SecurityCategory::kConfidentiality;

  std::vector<std::string> properties;  ///< check: CSL property texts
  std::string constant;                 ///< sweep: overridden constant name
  std::vector<double> values;           ///< sweep: values to evaluate

  int nmax = 1;
  double horizon_years = 1.0;
  std::vector<std::pair<std::string, symbolic::Value>> overrides;
  /// Per-request wall-clock budget. Absent = no timeout; 0 = already
  /// expired (deterministic timeout, used by the protocol tests).
  std::optional<int64_t> timeout_ms;
  std::optional<linalg::FixpointMethod> solver;
  /// Per-request resource ceilings (absent = unlimited). Exceeding one
  /// yields a typed state_budget_exceeded / memory_budget_exceeded error.
  std::optional<int64_t> max_states;
  std::optional<int64_t> max_memory_mb;
  /// State-store backend for exploration ("auto" | "classic" | "compact").
  symbolic::ExplorationEngine engine = symbolic::ExplorationEngine::kAuto;
  /// Solver-kernel knobs (docs/engine.md#solver-kernels): sparse layout for
  /// transient products ("auto" | "csr" | "blocked"), Gauss-Seidel sweep
  /// ordering ("auto" | "direct" | "colored"), state reordering at
  /// uniformization ("auto" | "off" | "rcm"), and steady-state truncation
  /// of long transient horizons (default on).
  linalg::MatrixLayout layout = linalg::MatrixLayout::kAuto;
  linalg::GsOrdering gs_ordering = linalg::GsOrdering::kAuto;
  linalg::StateReorder reorder = linalg::StateReorder::kAuto;
  bool steady_state_detection = true;
  /// Model family of the generated model ("ctmc" | "mdp"): ctmc is the
  /// paper's exploit-vs-patch race, mdp the nondeterministic worst-case
  /// attacker. Part of request identity — session and disk cache keys fold
  /// it in, so a cached ctmc answer can never serve an mdp query.
  symbolic::ModelType model_type = symbolic::ModelType::kCtmc;
  /// check on an mdp model: also export the optimizing scheduler (the attack
  /// path) per property; the response's result rows gain a "strategy" object.
  bool strategy = false;
};

/// Outcome of parsing one request line: either a request or a bad_request
/// error (never both). `id`/`op_text` carry whatever could be salvaged from
/// the malformed input so the error response can still echo them.
struct ParseResult {
  std::optional<Request> request;
  ErrorInfo error;
  std::string id;       ///< echoed id even when parsing failed
  std::string op_text;  ///< raw op string even when unknown
};

/// Parse one newline-delimited request. Unknown top-level keys are rejected
/// (bad_request) so client typos fail loudly instead of silently running a
/// default analysis.
ParseResult parse_request(std::string_view line);

/// Parse a category token ("confidentiality" | "integrity" | "availability").
std::optional<automotive::SecurityCategory> parse_category_token(
    std::string_view text);

/// A complete v1 error envelope built outside the dispatcher — for requests
/// that never reach it (connection overflow, a request whose worker crashed
/// past the resend cap). `id`/`op_text` echo what could be salvaged from the
/// original line; metrics are all zero ("none" caches, engine "none").
std::string synthetic_envelope(std::string_view id, std::string_view op_text,
                               const ErrorInfo& error);

}  // namespace autosec::service
