// `autosec serve` — a persistent batch-analysis service over the staged
// engine. Requests are newline-delimited JSON (one request per line, see
// service/protocol.hpp for the v1 schema) read from stdin, a file, a Unix
// socket, or a TCP listener; each is answered with exactly one response
// line. Every transport speaks the same v1 envelopes — a response is
// bit-identical whether it travelled over stdin or a socket.
//
//  * Sessions are cached (service/session_cache.hpp): repeated queries for
//    the same architecture + engine knobs reuse every compiled/explored/
//    uniformized stage. The per-response metrics object proves it
//    (session_cache "hit", explores 0).
//  * With --disk-cache DIR, finished results are also persisted
//    (service/disk_cache.hpp) keyed by the full request identity, so a
//    restarted server answers repeated requests with disk_cache "hit" and
//    explores 0 — warm from the first request.
//  * Socket transports serve connections concurrently (service/
//    transport.hpp): each connection gets its own reader thread, responses
//    keep per-connection input order, and batches of available request
//    lines fan across the engine thread pool.
//  * Admission control (service/admission.hpp): --max-inflight and
//    --max-load-mb gate requests at the door; a saturated server answers
//    with a structured `overloaded` error carrying retry_after_ms instead
//    of aborting admitted work mid-flight.
//  * With --workers N (service/shard.hpp) the process pre-forks N engine
//    workers and routes requests by architecture digest, so each worker's
//    session cache stays hot for its shard of the fleet's models.
//  * Per-request deadlines (timeout_ms) cancel cleanly between solver
//    sweeps via util::CancelToken and answer with a structured timeout
//    error; the session survives for the next request.
//  * SIGTERM/SIGINT request a graceful drain: requests already read are
//    finished and answered, then the loop exits 0 (util/drain.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/admission.hpp"
#include "service/config.hpp"
#include "service/disk_cache.hpp"
#include "service/protocol.hpp"
#include "service/session_cache.hpp"
#include "util/budget.hpp"
#include "util/json.hpp"

namespace autosec::csl {
class CheckpointLedger;
}  // namespace autosec::csl

namespace autosec::service {

struct ServerOptions {
  /// Read requests from this file instead of stdin (mainly tests/CI).
  std::string input_path;
  /// Listen on this Unix socket instead of stdin; connections are served
  /// concurrently, each streaming NDJSON requests and responses.
  std::string socket_path;
  /// Listen on TCP ("PORT" or "HOST:PORT", default host 127.0.0.1; port 0
  /// picks a free port, reported on stderr). Mutually exclusive with
  /// --socket.
  std::string tcp_address;
  /// Pre-fork this many engine workers behind the listener and shard
  /// requests by architecture digest (0 = serve in-process). Requires a
  /// socket or TCP listener.
  int workers = 0;
  /// Concurrent connections served per listener; excess connections get one
  /// overloaded envelope and are closed.
  size_t max_connections = 64;
  /// Admission control: concurrent admitted requests (0 = unlimited).
  size_t max_inflight = 0;
  /// Admission control: estimated engine working-set ceiling in MiB
  /// (0 = no memory gate).
  size_t max_load_mb = 0;
  /// Persist results under this directory (created if needed) so restarts
  /// answer repeated requests without engine work. Empty = no disk cache.
  std::string disk_cache_dir;
  /// Disk-cache size quota in MiB; stores beyond it evict entries
  /// oldest-first (0 = unbounded).
  size_t disk_cache_mb = 0;
  /// Snapshot per-property solved values under this directory (created if
  /// needed) at engine safepoints, so a killed run — or a respawned shard
  /// worker — resumes instead of recomputing. Empty = no checkpointing.
  std::string checkpoint_dir;
  /// Minimum milliseconds between checkpoint persists (0 = every record).
  /// Completed requests always flush, so the interval only bounds what a
  /// mid-request crash can lose; 250 ms keeps persist cost well under the
  /// 2% overhead budget the Fig. 5 bench gates.
  uint64_t checkpoint_interval_ms = 250;
  /// Sharded mode: SIGKILL + respawn a worker whose progress epoch has not
  /// advanced for this long while it holds dispatched requests (0 = off).
  uint64_t watchdog_ms = 0;
  /// Hot-reloadable config file (service/config.hpp): read at startup (its
  /// fields override the flags) and re-read on SIGHUP.
  std::string config_path;
  size_t cache_capacity = 8;
  /// Applied to requests that carry no timeout_ms of their own.
  std::optional<int64_t> default_timeout_ms;
  /// Max request lines handled per parallel batch.
  size_t max_batch = 16;
  /// Worker threads (0 = keep the process-wide setting).
  int threads = 0;
  /// Zero out wall-clock fields in responses — golden-file tests.
  bool deterministic = false;
};

class Server {
 public:
  /// Throws std::runtime_error when disk_cache_dir is set but unusable.
  explicit Server(ServerOptions options);

  /// Handle one raw request line and return the single-line JSON response
  /// (no trailing newline). Thread-safe; concurrent calls on the same
  /// session-cache entry serialize on the entry's mutex.
  std::string handle_line(const std::string& line);

  /// Handle a batch of request lines, fanning across the engine pool in
  /// max_batch groups; responses come back in input order.
  std::vector<std::string> handle_batch(const std::vector<std::string>& lines);

  /// Stop accepting new work: every subsequent handle_line answers with a
  /// structured shutting_down error. The serve loops call this when a drain
  /// signal arrives; tests call it directly.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Run to EOF over a stream (the --input path). No signal handlers.
  int serve_stream(std::istream& in, std::ostream& out);
  /// Poll loop over a raw fd (stdin), watching the drain self-pipe so a
  /// SIGTERM interrupts the wait; requests already read are still answered.
  int serve_fd(int fd, std::ostream& out);
  /// Concurrent accept loop over an already-listening socket fd (TCP or
  /// Unix); exits 0 on drain. Does not close the fd.
  int serve_listener(int listen_fd, std::ostream& err);
  /// Dispatch on ServerOptions: input file, TCP/Unix listener (optionally
  /// pre-fork sharded), or stdin.
  int run(std::ostream& out, std::ostream& err);

  SessionCache::Stats cache_stats() const { return cache_.stats(); }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Apply a hot config reload to the live server: admission limits,
  /// connection cap, cache capacities, checkpoint interval, timeout fallback,
  /// batch size, watchdog deadline, log level. Never drops a connection or
  /// invalidates a cache entry.
  void apply_config(const ServeConfig& config);
  /// Parse + apply; on a malformed document logs a warning and keeps the
  /// previous configuration (an operator typo must not take the server down).
  /// Returns whether the config was applied.
  bool apply_config_text(const std::string& text);
  /// Re-read options().config_path and apply it (the SIGHUP path).
  bool reload_config_file();
  /// Canonical JSON of the last applied config document ("{}" when no
  /// --config file is in play).
  std::string active_config() const;
  uint64_t config_reloads() const {
    return config_reloads_.load(std::memory_order_relaxed);
  }
  size_t effective_max_batch() const {
    return max_batch_.load(std::memory_order_relaxed);
  }
  uint64_t effective_watchdog_ms() const {
    return watchdog_ms_.load(std::memory_order_relaxed);
  }
  /// Admission gate — exposed so tests can saturate it deterministically.
  AdmissionController& admission() { return admission_; }
  DiskCache* disk_cache() { return disk_cache_.get(); }
  const ServerOptions& options() const { return options_; }

  /// The envelope answered to connections shed at the accept gate (and to
  /// requests shed by admission): ok=false, code "overloaded",
  /// retry_after_ms filled.
  std::string overflow_response() const;

 private:
  struct RequestMetrics {
    double wall_seconds = 0.0;
    const char* session_cache = "none";  // "hit" | "miss" | "none"
    const char* disk_cache = "none";     // "hit" | "miss" | "none"
    size_t explores = 0;
    size_t states = 0;
    size_t solver_fallbacks = 0;
    /// Resolved state-store backend ("classic" | "compact"); "none" for
    /// requests that build no state space (status, diagnose, cache hits that
    /// never re-explore keep the session's recorded engine).
    std::string engine = "none";
    /// Cache key of the entry this request used; lets handle_line evict the
    /// (possibly poisoned) entry when dispatch fails engine-side.
    std::string cache_key;
    /// The request's resource meter (always armed, ceilings optional); its
    /// peak feeds the admission controller's working-set estimate.
    std::shared_ptr<util::ResourceBudget> budget;
    /// Per-property values replayed from the checkpoint ledger instead of
    /// recomputed (only reported when checkpointing is enabled).
    size_t checkpoint_hits = 0;
    size_t checkpoint_records = 0;
  };

  /// Engine work of one parsed request; returns the "result" payload.
  /// Throws util::Cancelled on deadline, RequestError for client mistakes
  /// discovered during dispatch, anything else maps to engine_error.
  util::JsonValue dispatch(const Request& request, RequestMetrics& metrics);

  util::JsonValue run_analyze(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_check(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_sweep(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_diagnose(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_status(const Request& request, RequestMetrics& metrics);

  /// Process every complete line currently in `buffer` (leaving a trailing
  /// partial line in place), writing responses in input order.
  void process_buffered(std::string& buffer, std::ostream& out);

  /// The request's effective timeout fallback (reloadable at runtime).
  std::optional<int64_t> effective_timeout() const;
  /// Open (and load) the checkpoint ledger of one request identity; nullptr
  /// when checkpointing is disabled or the ledger directory is unusable.
  std::shared_ptr<csl::CheckpointLedger> make_ledger(const Request& request,
                                                     uint64_t digest,
                                                     RequestMetrics& metrics);
  /// Background thread body: wait for SIGHUP ticks and re-apply the config
  /// file until reload_stop_ is set.
  void reload_watch_loop();

  ServerOptions options_;
  SessionCache cache_;
  AdmissionController admission_;
  std::unique_ptr<DiskCache> disk_cache_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};

  // Hot-reloadable knobs (see apply_config). default_timeout_ms_ uses -1 for
  // "no fallback" so one atomic carries both states.
  std::atomic<int64_t> default_timeout_ms_{-1};
  std::atomic<size_t> max_batch_{16};
  std::atomic<uint64_t> checkpoint_interval_ms_{250};
  std::atomic<uint64_t> watchdog_ms_{0};
  std::shared_ptr<std::atomic<size_t>> max_connections_;
  std::atomic<uint64_t> config_reloads_{0};
  std::atomic<bool> reload_stop_{false};
  mutable std::mutex config_mutex_;
  std::string active_config_;  ///< canonical JSON of the last applied config
};

/// CLI entry point: parse `serve` flags, construct the server, run it.
int run_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);

}  // namespace autosec::service
