// `autosec serve` — a persistent batch-analysis service over the staged
// engine. Requests are newline-delimited JSON (one request per line, see
// service/protocol.hpp for the v1 schema) read from stdin, a file, or a
// Unix socket; each is answered with exactly one response line.
//
//  * Sessions are cached (service/session_cache.hpp): repeated queries for
//    the same architecture + engine knobs reuse every compiled/explored/
//    uniformized stage. The per-response metrics object proves it
//    (session_cache "hit", explores 0).
//  * Batches of available request lines fan across the engine thread pool;
//    responses keep input order.
//  * Per-request deadlines (timeout_ms) cancel cleanly between solver
//    sweeps via util::CancelToken and answer with a structured timeout
//    error; the session survives for the next request.
//  * SIGTERM/SIGINT request a graceful drain: requests already read are
//    finished and answered, then the loop exits 0 (util/drain.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "service/session_cache.hpp"
#include "util/json.hpp"

namespace autosec::service {

struct ServerOptions {
  /// Read requests from this file instead of stdin (mainly tests/CI).
  std::string input_path;
  /// Listen on this Unix socket instead of stdin. One connection is served
  /// at a time; each connection streams NDJSON requests and responses.
  std::string socket_path;
  size_t cache_capacity = 8;
  /// Applied to requests that carry no timeout_ms of their own.
  std::optional<int64_t> default_timeout_ms;
  /// Max request lines handled per parallel batch.
  size_t max_batch = 16;
  /// Worker threads (0 = keep the process-wide setting).
  int threads = 0;
  /// Zero out wall-clock fields in responses — golden-file tests.
  bool deterministic = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Handle one raw request line and return the single-line JSON response
  /// (no trailing newline). Thread-safe; concurrent calls on the same
  /// session-cache entry serialize on the entry's mutex.
  std::string handle_line(const std::string& line);

  /// Stop accepting new work: every subsequent handle_line answers with a
  /// structured shutting_down error. The serve loops call this when a drain
  /// signal arrives; tests call it directly.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Run to EOF over a stream (the --input path). No signal handlers.
  int serve_stream(std::istream& in, std::ostream& out);
  /// Poll loop over a raw fd (stdin), watching the drain self-pipe so a
  /// SIGTERM interrupts the wait; requests already read are still answered.
  int serve_fd(int fd, std::ostream& out);
  /// Unix-socket accept loop; exits 0 on drain. `err` gets lifecycle notes.
  int serve_socket(std::ostream& err);
  /// Dispatch on ServerOptions: input file, socket, or stdin.
  int run(std::ostream& out, std::ostream& err);

  SessionCache::Stats cache_stats() const { return cache_.stats(); }
  uint64_t requests_handled() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct RequestMetrics {
    double wall_seconds = 0.0;
    const char* session_cache = "none";  // "hit" | "miss" | "none"
    size_t explores = 0;
    size_t states = 0;
    size_t solver_fallbacks = 0;
    /// Resolved state-store backend ("classic" | "compact"); "none" for
    /// requests that build no state space (status, diagnose, cache hits that
    /// never re-explore keep the session's recorded engine).
    std::string engine = "none";
    /// Cache key of the entry this request used; lets handle_line evict the
    /// (possibly poisoned) entry when dispatch fails engine-side.
    std::string cache_key;
  };

  /// Engine work of one parsed request; returns the "result" payload.
  /// Throws util::Cancelled on deadline, RequestError for client mistakes
  /// discovered during dispatch, anything else maps to engine_error.
  util::JsonValue dispatch(const Request& request, RequestMetrics& metrics);

  util::JsonValue run_analyze(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_check(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_sweep(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_diagnose(const Request& request, RequestMetrics& metrics);
  util::JsonValue run_status(const Request& request, RequestMetrics& metrics);

  /// Process every complete line currently in `buffer` (leaving a trailing
  /// partial line in place), writing responses in input order.
  void process_buffered(std::string& buffer, std::ostream& out);

  ServerOptions options_;
  SessionCache cache_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

/// CLI entry point: parse `serve` flags, construct the server, run it.
int run_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);

}  // namespace autosec::service
