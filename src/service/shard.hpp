// Pre-fork sharded mode for `autosec serve --workers N`: the parent process
// owns the listener and the client connections; N forked workers each run a
// full in-process Server over a socketpair. Requests are routed to workers
// by the FNV-1a digest of the request's architecture path, so every repeat
// query for an architecture lands on the same worker and its SessionCache
// stays hot — the fleet scales out without losing the cache economics that
// make serving worthwhile. Requests without a routable architecture (status,
// malformed lines) round-robin.
//
// Wire format parent<->worker, both directions: "<seq> <payload>\n", where
// seq is a parent-assigned monotonically increasing id and payload is the
// raw request line / response envelope (which never contains a newline).
//
// Crash recovery: the parent waits on its children; a worker that dies
// unexpectedly is respawned and the requests it had not answered are resent
// to the replacement. The sequence map guarantees every request is answered
// exactly once — a request interrupted mid-engine may be COMPUTED twice, but
// its envelope is delivered once, because the first response claims the
// pending entry and later duplicates find nothing to deliver. A request that
// crashes the worker repeatedly (2 resends) is answered with a structured
// internal_error instead of crashing the fleet forever. Per-connection
// response order is preserved by an ordering queue in front of each sink.
//
// Drain: SIGTERM stops the accept loop; when every connection has been
// answered the parent closes the worker pipes, the workers see EOF and exit,
// and the parent reaps them and returns 0.
#pragma once

#include <iosfwd>

#include "service/server.hpp"

namespace autosec::service {

/// Run the sharded supervisor over an already-listening socket until a drain
/// request completes. `options.workers` must be > 0; the per-worker Server
/// is constructed from the same options with the transport fields cleared.
/// Returns 0 on a clean drain.
int run_sharded(int listen_fd, const ServerOptions& options, std::ostream& err);

}  // namespace autosec::service
