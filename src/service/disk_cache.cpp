#include "service/disk_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "service/session_cache.hpp"

namespace autosec::service {

namespace {

constexpr const char* kHeader = "autosec-disk-cache-v1";

std::string hex64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

bool ends_with(const std::string& text, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

/// Shape validation shared by fsck and lookup: header line, a key line, a
/// non-empty payload line. fsck cannot check the key (it does not know it),
/// but lookup re-checks it on every hit.
bool entry_shape_valid(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string header;
  std::string stored_key;
  std::string payload;
  return static_cast<bool>(std::getline(in, header)) &&
         static_cast<bool>(std::getline(in, stored_key)) &&
         static_cast<bool>(std::getline(in, payload)) && header == kHeader &&
         !payload.empty();
}

int64_t file_size_or_zero(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

}  // namespace

DiskCache::DiskCache(std::string dir, size_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("disk cache: cannot create directory '" + dir_ +
                             "'" + (ec ? ": " + ec.message() : ""));
  }
  fsck();
  enforce_quota();
}

void DiskCache::fsck() {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  int64_t live_bytes = 0;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir_, ec)) {
    if (!item.is_regular_file()) continue;
    const std::string name = item.path().filename().string();
    if (ends_with(name, ".tmp")) {
      // A crash mid-store: the rename never happened, the temp is garbage.
      std::error_code remove_ec;
      std::filesystem::remove(item.path(), remove_ec);
      fsck_removed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!ends_with(name, ".entry")) continue;  // foreign file: leave it alone
    if (!entry_shape_valid(item.path())) {
      std::error_code remove_ec;
      std::filesystem::remove(item.path(), remove_ec);
      fsck_removed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    live_bytes += file_size_or_zero(item.path());
  }
  size_bytes_.store(live_bytes, std::memory_order_relaxed);
}

std::string DiskCache::entry_path(const std::string& key) const {
  // Two independent hashes: 128 bits of name, so an accidental filename
  // collision needs simultaneous collisions in both. The key stored inside
  // the file closes the loophole entirely.
  const uint64_t primary = fnv1a64(key);
  const uint64_t secondary = fnv1a64(key + "\x1e""autosec-disk-cache-salt");
  return dir_ + "/" + hex64(primary) + hex64(secondary) + ".entry";
}

void DiskCache::add_size(int64_t delta) {
  const int64_t now = size_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (now < 0) size_bytes_.store(0, std::memory_order_relaxed);
}

std::optional<std::string> DiskCache::lookup(const std::string& key) {
  if (key.find('\n') != std::string::npos) {
    // A key with a newline cannot round-trip through the line-oriented file
    // format; such requests are simply never disk-cached.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string header;
  std::string stored_key;
  std::string payload;
  const bool shape_ok = static_cast<bool>(std::getline(in, header)) &&
                        static_cast<bool>(std::getline(in, stored_key)) &&
                        static_cast<bool>(std::getline(in, payload));
  if (!shape_ok || header != kHeader || stored_key != key || payload.empty()) {
    // Truncated write, foreign file, or a (vanishingly unlikely) hash
    // collision: drop the entry and answer cold.
    in.close();
    const int64_t dropped = file_size_or_zero(path);
    std::error_code ec;
    if (std::filesystem::remove(path, ec)) add_size(-dropped);
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return payload;
}

void DiskCache::store(const std::string& key, const std::string& payload) {
  if (key.find('\n') != std::string::npos) return;      // would tear line 2
  if (payload.find('\n') != std::string::npos) return;  // would tear line 3
  const std::string path = entry_path(key);
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kHeader << "\n" << key << "\n" << payload << "\n";
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return;
    }
  }
  const int64_t replaced = file_size_or_zero(path);  // 0 if fresh entry
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return;
  }
  add_size(file_size_or_zero(path) - replaced);
  stores_.fetch_add(1, std::memory_order_relaxed);
  enforce_quota();
}

void DiskCache::set_quota(size_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  enforce_quota();
}

void DiskCache::enforce_quota() {
  const size_t quota = max_bytes_.load(std::memory_order_relaxed);
  if (quota == 0) return;
  if (size_bytes_.load(std::memory_order_relaxed) <=
      static_cast<int64_t>(quota)) {
    return;
  }
  std::lock_guard<std::mutex> lock(evict_mutex_);
  // Re-check under the lock: a concurrent sweep may already have trimmed.
  if (size_bytes_.load(std::memory_order_relaxed) <=
      static_cast<int64_t>(quota)) {
    return;
  }
  struct Candidate {
    std::filesystem::file_time_type mtime;
    std::string path;
    int64_t size = 0;
  };
  std::vector<Candidate> candidates;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir_, ec)) {
    if (!item.is_regular_file()) continue;
    const std::string name = item.path().filename().string();
    if (!ends_with(name, ".entry")) continue;
    std::error_code time_ec;
    const auto mtime = std::filesystem::last_write_time(item.path(), time_ec);
    if (time_ec) continue;
    candidates.push_back(
        {mtime, item.path().string(), file_size_or_zero(item.path())});
  }
  // Oldest first; ties broken by path so eviction order is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  for (const auto& victim : candidates) {
    if (size_bytes_.load(std::memory_order_relaxed) <=
        static_cast<int64_t>(quota)) {
      break;
    }
    std::error_code remove_ec;
    if (std::filesystem::remove(victim.path, remove_ec)) {
      add_size(-victim.size);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

DiskCache::Stats DiskCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  stats.corrupt = corrupt_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.fsck_removed = fsck_removed_.load(std::memory_order_relaxed);
  const int64_t size = size_bytes_.load(std::memory_order_relaxed);
  stats.size_bytes = size < 0 ? 0 : static_cast<size_t>(size);
  stats.quota_bytes = max_bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace autosec::service
