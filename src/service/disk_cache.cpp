#include "service/disk_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "service/session_cache.hpp"

namespace autosec::service {

namespace {

constexpr const char* kHeader = "autosec-disk-cache-v1";

std::string hex64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

}  // namespace

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("disk cache: cannot create directory '" + dir_ +
                             "'" + (ec ? ": " + ec.message() : ""));
  }
}

std::string DiskCache::entry_path(const std::string& key) const {
  // Two independent hashes: 128 bits of name, so an accidental filename
  // collision needs simultaneous collisions in both. The key stored inside
  // the file closes the loophole entirely.
  const uint64_t primary = fnv1a64(key);
  const uint64_t secondary = fnv1a64(key + "\x1e""autosec-disk-cache-salt");
  return dir_ + "/" + hex64(primary) + hex64(secondary) + ".entry";
}

std::optional<std::string> DiskCache::lookup(const std::string& key) {
  if (key.find('\n') != std::string::npos) {
    // A key with a newline cannot round-trip through the line-oriented file
    // format; such requests are simply never disk-cached.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string header;
  std::string stored_key;
  std::string payload;
  const bool shape_ok = static_cast<bool>(std::getline(in, header)) &&
                        static_cast<bool>(std::getline(in, stored_key)) &&
                        static_cast<bool>(std::getline(in, payload));
  if (!shape_ok || header != kHeader || stored_key != key || payload.empty()) {
    // Truncated write, foreign file, or a (vanishingly unlikely) hash
    // collision: drop the entry and answer cold.
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return payload;
}

void DiskCache::store(const std::string& key, const std::string& payload) {
  if (key.find('\n') != std::string::npos) return;      // would tear line 2
  if (payload.find('\n') != std::string::npos) return;  // would tear line 3
  const std::string path = entry_path(key);
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kHeader << "\n" << key << "\n" << payload << "\n";
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
}

DiskCache::Stats DiskCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  stats.corrupt = corrupt_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace autosec::service
