#include "service/transport.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <ostream>
#include <thread>
#include <utility>

#include "util/drain.hpp"
#include "util/numeric.hpp"

namespace autosec::service {

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

namespace {

int checked_listen(int fd, std::string_view what, std::string& error) {
  if (::listen(fd, SOMAXCONN) < 0) {
    error = std::string(what) + ": listen(): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int listen_tcp(const std::string& address, int* bound_port, std::string& error) {
  ignore_sigpipe();
  std::string host = "127.0.0.1";
  std::string port_text = address;
  if (const size_t colon = address.rfind(':'); colon != std::string::npos) {
    host = address.substr(0, colon);
    port_text = address.substr(colon + 1);
  }
  const std::optional<int64_t> parsed = util::parse_int(port_text);
  if (!parsed) {
    error = "invalid TCP port '" + port_text + "' in '" + address + "'";
    return -1;
  }
  if (*parsed < 0 || *parsed > 65535) {
    error = "TCP port out of range in '" + address + "'";
    return -1;
  }
  const int port = static_cast<int>(*parsed);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error = "invalid TCP host '" + host + "' (use a dotted IPv4 address)";
    return -1;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("tcp: socket(): ") + std::strerror(errno);
    return -1;
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = "tcp: cannot bind " + host + ":" + std::to_string(port) + ": " +
            std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in resolved{};
    socklen_t length = sizeof(resolved);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&resolved), &length) == 0) {
      *bound_port = ntohs(resolved.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return checked_listen(fd, "tcp", error);
}

int listen_unix(const std::string& path, std::string& error) {
  ignore_sigpipe();
  if (path.size() >= sizeof(sockaddr_un::sun_path)) {
    error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("unix: socket(): ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = "cannot bind '" + path + "': " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return checked_listen(fd, "unix", error);
}

bool write_fd_all(int fd, std::string_view data) {
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t wrote = ::write(fd, data.data() + offset, data.size() - offset);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away; the caller drops the rest
    }
    offset += static_cast<size_t>(wrote);
  }
  return true;
}

void ConnectionSink::write_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_.load(std::memory_order_relaxed)) return;
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  if (!write_fd_all(fd_, framed)) {
    broken_.store(true, std::memory_order_relaxed);
  }
}

namespace {

/// Split the complete lines out of `buffer` (leaving a trailing partial line
/// in place), dropping blank ones.
std::vector<std::string> take_lines(std::string& buffer) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (true) {
    const size_t newline = buffer.find('\n', pos);
    if (newline == std::string::npos) break;
    std::string line = buffer.substr(pos, newline - pos);
    pos = newline + 1;
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      lines.push_back(std::move(line));
    }
  }
  buffer.erase(0, pos);
  return lines;
}

/// One connection's read loop: batches of complete lines go to the handler;
/// EOF or a drain finishes the handler (blocking until every line is
/// answered) and closes the fd.
void run_connection(int fd, const HandlerFactory& factory) {
  auto sink = std::make_shared<ConnectionSink>(fd);
  const std::unique_ptr<ConnectionHandler> handler = factory(sink);
  std::string buffer;
  while (!util::drain_requested()) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {util::drain_fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain: answer what was read, then stop
    if ((fds[0].revents & (POLLIN | POLLHUP)) == 0) continue;
    char chunk[65536];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (got == 0) break;  // EOF
    buffer.append(chunk, static_cast<size_t>(got));
    if (std::vector<std::string> lines = take_lines(buffer); !lines.empty()) {
      handler->handle_lines(std::move(lines));
    }
  }
  // Lines fully received before the EOF/drain are still answered — the
  // graceful half of the drain contract.
  if (std::vector<std::string> lines = take_lines(buffer); !lines.empty()) {
    handler->handle_lines(std::move(lines));
  }
  handler->finish();
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

struct ConnectionThread {
  std::thread thread;
  std::shared_ptr<std::atomic<bool>> done;
};

}  // namespace

int serve_connections(int listen_fd, const AcceptLoopOptions& options,
                      const HandlerFactory& factory, std::ostream& err) {
  ignore_sigpipe();
  std::vector<ConnectionThread> connections;
  std::atomic<size_t> active{0};
  const auto current_cap = [&options]() -> size_t {
    size_t cap = options.max_connections;
    if (options.dynamic_max_connections) {
      if (const size_t dynamic = options.dynamic_max_connections->load(
              std::memory_order_relaxed);
          dynamic != 0) {
        cap = dynamic;
      }
    }
    return cap == 0 ? 1 : cap;
  };

  while (!util::drain_requested()) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {util::drain_fd(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      err << "serve: poll(): " << std::strerror(errno) << "\n";
      break;
    }
    if (fds[1].revents != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;

    // Reap finished connection threads so a long-lived server does not
    // accumulate one join handle per connection ever served.
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }

    if (active.load(std::memory_order_relaxed) >= current_cap()) {
      if (options.overflow_line) {
        write_fd_all(conn, options.overflow_line() + "\n");
      }
      ::close(conn);
      continue;
    }

    active.fetch_add(1, std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    connections.push_back(
        {std::thread([conn, &factory, &active, done] {
           run_connection(conn, factory);
           active.fetch_sub(1, std::memory_order_relaxed);
           done->store(true, std::memory_order_release);
         }),
         done});
  }

  for (ConnectionThread& connection : connections) connection.thread.join();
  return 0;
}

}  // namespace autosec::service
