// Persistent result cache for `autosec serve`: restarts start warm. Entries
// are keyed by the full request identity the server computes (architecture
// content digest + property + engine knobs + overrides), so a model edit or
// a different question can never replay a stale answer — it simply hashes to
// a different file.
//
// On-disk format (one file per entry, named by two independent 64-bit FNV-1a
// hashes of the key):
//
//   line 1: "autosec-disk-cache-v1"          format header
//   line 2: <the full key>                   collision check on read
//   line 3: <payload>                        opaque to the cache (JSON)
//
// Writes go to a temp file in the same directory and rename() into place, so
// a crash mid-store leaves either the old entry or none — never a torn one.
// Any read that fails validation (bad header, key mismatch, missing payload)
// unlinks the file and reports a miss: corruption degrades to a cold entry,
// never to a wrong answer.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>

namespace autosec::service {

class DiskCache {
 public:
  /// Opens (creating if needed) the cache directory. Throws std::runtime_error
  /// when the directory cannot be created.
  explicit DiskCache(std::string dir);

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// The payload stored for `key`, or nullopt on miss (including corrupt or
  /// colliding entries, which are removed).
  std::optional<std::string> lookup(const std::string& key);

  /// Persist `payload` under `key` (atomic replace; best-effort — a failed
  /// store leaves the cache cold for that key, it does not throw).
  void store(const std::string& key, const std::string& payload);

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t stores = 0;
    size_t corrupt = 0;  ///< entries discarded by validation
  };
  Stats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& key) const;

  std::string dir_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> stores_{0};
  std::atomic<size_t> corrupt_{0};
};

}  // namespace autosec::service
