// Persistent result cache for `autosec serve`: restarts start warm. Entries
// are keyed by the full request identity the server computes (architecture
// content digest + property + engine knobs + overrides), so a model edit or
// a different question can never replay a stale answer — it simply hashes to
// a different file.
//
// On-disk format (one file per entry, named by two independent 64-bit FNV-1a
// hashes of the key):
//
//   line 1: "autosec-disk-cache-v1"          format header
//   line 2: <the full key>                   collision check on read
//   line 3: <payload>                        opaque to the cache (JSON)
//
// Writes go to a temp file in the same directory and rename() into place, so
// a crash mid-store leaves either the old entry or none — never a torn one.
// Any read that fails validation (bad header, key mismatch, missing payload)
// unlinks the file and reports a miss: corruption degrades to a cold entry,
// never to a wrong answer.
//
// Opening the cache runs a startup fsck over the directory: stray ".tmp"
// files (a crash mid-store) and entries that fail shape validation are
// unlinked, and the byte size of the surviving entries seeds the quota
// accounting. With a nonzero quota (`max_bytes`), each store that pushes the
// cache over the limit evicts whole entries oldest-first (by mtime) until it
// fits — the persistent analogue of the session cache's LRU trim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace autosec::service {

class DiskCache {
 public:
  /// Opens (creating if needed) the cache directory and fscks it. Throws
  /// std::runtime_error when the directory cannot be created. `max_bytes`
  /// of 0 means no size quota.
  explicit DiskCache(std::string dir, size_t max_bytes = 0);

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// The payload stored for `key`, or nullopt on miss (including corrupt or
  /// colliding entries, which are removed).
  std::optional<std::string> lookup(const std::string& key);

  /// Persist `payload` under `key` (atomic replace; best-effort — a failed
  /// store leaves the cache cold for that key, it does not throw). With a
  /// quota set, evicts oldest entries afterwards until the cache fits.
  void store(const std::string& key, const std::string& payload);

  /// Hot config reload: change the size quota (0 = unbounded). Shrinking
  /// evicts oldest-first immediately.
  void set_quota(size_t max_bytes);

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t stores = 0;
    size_t corrupt = 0;       ///< entries discarded by validation
    size_t evictions = 0;     ///< entries removed by the size quota
    size_t fsck_removed = 0;  ///< strays/invalid entries removed at startup
    size_t size_bytes = 0;    ///< bytes currently held by valid entries
    size_t quota_bytes = 0;   ///< active quota (0 = unbounded)
  };
  Stats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& key) const;
  void fsck();
  /// Evict oldest-first until size_bytes_ <= quota (no-op when quota is 0).
  void enforce_quota();
  void add_size(int64_t delta);

  std::string dir_;
  std::atomic<size_t> max_bytes_{0};
  std::atomic<int64_t> size_bytes_{0};
  std::mutex evict_mutex_;  ///< one eviction/fsck sweep at a time
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> stores_{0};
  std::atomic<size_t> corrupt_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> fsck_removed_{0};
};

}  // namespace autosec::service
