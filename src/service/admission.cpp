#include "service/admission.hpp"

#include <algorithm>

namespace autosec::service {

namespace {

constexpr size_t kMiB = size_t{1} << 20;
/// Reservation floor: even a tiny request holds real buffers.
constexpr size_t kMinReservation = kMiB;
constexpr int64_t kMinRetryMs = 50;
constexpr int64_t kMaxRetryMs = 10'000;
constexpr int64_t kDeterministicRetryMs = 100;
/// EWMA weight of the newest observation — heavy enough to adapt within a
/// few requests, light enough to ride out one outlier.
constexpr double kAlpha = 0.3;

}  // namespace

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    release();
    controller_ = other.controller_;
    reserved_ = other.reserved_;
    other.controller_ = nullptr;
  }
  return *this;
}

void Ticket::observe(double wall_ms, size_t peak_bytes) {
  if (controller_ != nullptr) controller_->observe(wall_ms, peak_bytes);
}

void Ticket::release() {
  if (controller_ != nullptr) {
    controller_->finish(reserved_);
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options), load_(0, options.max_load_mb * kMiB) {}

size_t AdmissionController::reservation_estimate() const {
  // Called under mutex_. Until the first request completes there is nothing
  // to estimate from; start at the floor so a cold server admits eagerly.
  const size_t ceiling = options_.max_load_mb * kMiB;
  size_t estimate = kMinReservation;
  if (ewma_peak_bytes_ > static_cast<double>(estimate)) {
    estimate = static_cast<size_t>(ewma_peak_bytes_);
  }
  // Never estimate above the whole ceiling or nothing would ever be admitted.
  if (ceiling != 0) estimate = std::min(estimate, ceiling);
  return estimate;
}

int64_t AdmissionController::retry_estimate() const {
  // Called under mutex_.
  if (options_.deterministic) return kDeterministicRetryMs;
  int64_t retry = static_cast<int64_t>(ewma_wall_ms_);
  return std::clamp(retry, kMinRetryMs, kMaxRetryMs);
}

std::optional<Ticket> AdmissionController::try_admit(int64_t* retry_after_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.max_inflight != 0 && inflight_ >= options_.max_inflight) {
    ++shed_;
    if (retry_after_ms != nullptr) *retry_after_ms = retry_estimate();
    return std::nullopt;
  }
  size_t reserved = 0;
  if (options_.max_load_mb != 0) {
    reserved = reservation_estimate();
    if (!load_.try_charge_bytes(reserved)) {
      ++shed_;
      if (retry_after_ms != nullptr) *retry_after_ms = retry_estimate();
      return std::nullopt;
    }
  }
  ++inflight_;
  ++admitted_;
  return Ticket(this, reserved);
}

void AdmissionController::set_limits(size_t max_inflight, size_t max_load_mb) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.max_inflight = max_inflight;
  options_.max_load_mb = max_load_mb;
  // Reserved bytes stay charged; only the ceiling moves. Shrinking below the
  // current reservation just sheds new work until admitted requests drain.
  load_.set_ceilings(0, max_load_mb * kMiB);
}

void AdmissionController::finish(size_t reserved) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (reserved != 0) load_.release_bytes(reserved);
  if (inflight_ > 0) --inflight_;
}

void AdmissionController::observe(double wall_ms, size_t peak_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wall_ms > 0) {
    ewma_wall_ms_ = ewma_wall_ms_ == 0
                        ? wall_ms
                        : (1 - kAlpha) * ewma_wall_ms_ + kAlpha * wall_ms;
  }
  if (peak_bytes > 0) {
    const double observed = static_cast<double>(peak_bytes);
    ewma_peak_bytes_ = ewma_peak_bytes_ == 0
                           ? observed
                           : (1 - kAlpha) * ewma_peak_bytes_ + kAlpha * observed;
  }
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.inflight = inflight_;
  stats.reserved_bytes = load_.charged_bytes();
  stats.max_inflight = options_.max_inflight;
  stats.max_load_mb = options_.max_load_mb;
  return stats;
}

}  // namespace autosec::service
