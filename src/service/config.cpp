#include "service/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/log.hpp"

namespace autosec::service {

namespace {

size_t require_size(const util::JsonValue& value, const char* field) {
  if (!value.is_integer() || value.as_integer() < 0) {
    throw std::runtime_error(std::string("config: '") + field +
                             "' must be a non-negative integer");
  }
  return static_cast<size_t>(value.as_integer());
}

}  // namespace

ServeConfig ServeConfig::parse(const std::string& json) {
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse(json);
  } catch (const std::exception& error) {
    throw std::runtime_error(std::string("config: malformed JSON: ") +
                             error.what());
  }
  if (!doc.is_object()) throw std::runtime_error("config: not a JSON object");

  ServeConfig config;
  for (const auto& [field, value] : doc.members()) {
    if (field == "max_inflight") {
      config.max_inflight = require_size(value, "max_inflight");
    } else if (field == "max_load_mb") {
      config.max_load_mb = require_size(value, "max_load_mb");
    } else if (field == "max_connections") {
      config.max_connections = require_size(value, "max_connections");
    } else if (field == "cache_capacity") {
      config.cache_capacity = require_size(value, "cache_capacity");
    } else if (field == "disk_cache_mb") {
      config.disk_cache_mb = require_size(value, "disk_cache_mb");
    } else if (field == "checkpoint_interval_ms") {
      config.checkpoint_interval_ms =
          require_size(value, "checkpoint_interval_ms");
    } else if (field == "default_timeout_ms") {
      if (!value.is_integer() || value.as_integer() < -1) {
        throw std::runtime_error(
            "config: 'default_timeout_ms' must be an integer >= -1");
      }
      config.default_timeout_ms = value.as_integer();
    } else if (field == "max_batch") {
      const size_t batch = require_size(value, "max_batch");
      if (batch == 0) throw std::runtime_error("config: 'max_batch' must be >= 1");
      config.max_batch = batch;
    } else if (field == "watchdog_ms") {
      config.watchdog_ms = require_size(value, "watchdog_ms");
    } else if (field == "log_level") {
      if (!value.is_string()) {
        throw std::runtime_error("config: 'log_level' must be a string");
      }
      const std::string& name = value.as_string();
      // parse_log_level maps unknown names to kWarn; validate explicitly so a
      // typo ("inof") fails the reload instead of silently dimming the logs.
      const bool known = name == "trace" || name == "debug" || name == "info" ||
                         name == "warn" || name == "error" || name == "off";
      if (!known) {
        throw std::runtime_error("config: unknown log_level '" + name + "'");
      }
      config.log_level = name;
    } else {
      throw std::runtime_error("config: unknown field '" + field + "'");
    }
  }
  return config;
}

ServeConfig ServeConfig::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("config: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string ServeConfig::canonical() const {
  util::JsonValue doc = util::JsonValue::object();
  if (max_inflight) doc["max_inflight"] = util::JsonValue::number(uint64_t{*max_inflight});
  if (max_load_mb) doc["max_load_mb"] = util::JsonValue::number(uint64_t{*max_load_mb});
  if (max_connections) {
    doc["max_connections"] = util::JsonValue::number(uint64_t{*max_connections});
  }
  if (cache_capacity) {
    doc["cache_capacity"] = util::JsonValue::number(uint64_t{*cache_capacity});
  }
  if (disk_cache_mb) doc["disk_cache_mb"] = util::JsonValue::number(uint64_t{*disk_cache_mb});
  if (checkpoint_interval_ms) {
    doc["checkpoint_interval_ms"] = util::JsonValue::number(*checkpoint_interval_ms);
  }
  if (default_timeout_ms) {
    doc["default_timeout_ms"] = util::JsonValue::number(*default_timeout_ms);
  }
  if (max_batch) doc["max_batch"] = util::JsonValue::number(uint64_t{*max_batch});
  if (watchdog_ms) doc["watchdog_ms"] = util::JsonValue::number(*watchdog_ms);
  if (log_level) doc["log_level"] = util::JsonValue::string(*log_level);
  return doc.dump();
}

}  // namespace autosec::service
