// Process-wide observability for the staged engine: named counters, gauges
// and hierarchical timed spans, serialized to JSON for machine-readable perf
// trajectories (CLI --metrics-json, BENCH_*.json).
//
// Design constraints:
//  * Always compiled in, cheap when off: every recording call first does one
//    relaxed atomic load of the enabled flag and returns immediately when the
//    registry is disabled. A ScopedSpan on a disabled registry performs no
//    clock read at all.
//  * Thread-safe: counters are atomics (increments after the name lookup are
//    lock-free); name lookups and span/gauge updates take one short mutex.
//  * Hierarchy by thread: each thread keeps its own span stack, and a span's
//    key is the '/'-joined path of the spans open on that thread ("analyze/
//    compile"). Spans opened on pool workers therefore root at the worker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace autosec::util::metrics {

/// Aggregated timings of one span path.
struct SpanStats {
  uint64_t count = 0;     ///< completed spans at this path
  double seconds = 0.0;   ///< total wall time across them
};

class Registry {
 public:
  /// Recording switch; disabled (the default) short-circuits every call.
  /// Enabling does not clear previously recorded values.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Add `delta` to the named counter (created at 0 on first use).
  void add(std::string_view name, uint64_t delta = 1) {
    if (enabled()) add_slow(name, delta);
  }

  /// Set the named gauge to `value` (last write wins).
  void gauge(std::string_view name, double value) {
    if (enabled()) gauge_slow(name, value);
  }

  /// Record one completed span at `path` (called by ScopedSpan).
  void record_span(const std::string& path, double seconds) {
    if (enabled()) record_span_slow(path, seconds);
  }

  // --- snapshots (for tests and reporting; 0 / nullopt when absent).
  uint64_t counter_value(std::string_view name) const;
  std::optional<double> gauge_value(std::string_view name) const;
  SpanStats span_stats(std::string_view path) const;

  /// The whole registry as one pretty-printed JSON object:
  ///   {"schema": "autosec-metrics-v1",
  ///    "spans": {"<path>": {"count": N, "seconds": S}, ...},
  ///    "counters": {"<name>": N, ...},
  ///    "gauges": {"<name>": V, ...}}
  /// Keys are sorted; doubles use max_digits10 so the file round-trips.
  std::string to_json() const;

  /// Serialize to_json() to `path`; throws std::runtime_error on I/O failure.
  void write_json(const std::string& path) const;

  /// Drop every recorded value (the enabled flag is kept).
  void reset();

 private:
  void add_slow(std::string_view name, uint64_t delta);
  void gauge_slow(std::string_view name, double value);
  void record_span_slow(const std::string& path, double seconds);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  // unique_ptr keeps each atomic at a stable address across rehashes; an
  // ordered map keeps the JSON output deterministic for free.
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

/// The process-wide registry every engine layer records into.
Registry& registry();

/// RAII timed span on the process registry. Construction pushes `name` onto
/// the calling thread's span stack; destruction records the elapsed wall time
/// under the '/'-joined stack path and pops. Two clock reads per span when
/// enabled, nothing when disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace autosec::util::metrics
