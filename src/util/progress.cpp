#include "util/progress.hpp"

#include <atomic>

namespace autosec::util::progress {

namespace {
std::atomic<uint64_t> g_epoch{0};
}  // namespace

void bump() noexcept { g_epoch.fetch_add(1, std::memory_order_relaxed); }

uint64_t epoch() noexcept { return g_epoch.load(std::memory_order_relaxed); }

}  // namespace autosec::util::progress
