// Process-wide safepoint epoch: a relaxed counter bumped every time the
// engine crosses a fault-injection safepoint (util/fault.hpp polls one at
// every stage boundary, exploration chunk, and solver sweep). The counter is
// the liveness signal of the serving layer's watchdog: a shard worker
// piggybacks its epoch on heartbeat frames, and a supervisor that sees the
// epoch stall while requests are pending knows the worker is hung — stuck in
// a loop that crosses no safepoint — rather than merely slow.
//
// The epoch is deliberately process-global, not per-request: it answers "is
// this process still making engine progress at all?", which is exactly the
// question a SIGKILL-and-respawn watchdog needs answered. A hung request on
// a worker that is otherwise advancing other requests is indistinguishable
// from a slow one here; the per-request timeout (util::CancelToken) covers
// that case.
#pragma once

#include <cstdint>

namespace autosec::util::progress {

/// Advance the epoch by one. Called from every fault-site poll; one relaxed
/// fetch_add, cheap enough for the hot path (the bench overhead gate covers
/// it together with the fault polls).
void bump() noexcept;

/// Current epoch. Starts at 0; only ever grows.
uint64_t epoch() noexcept;

}  // namespace autosec::util::progress
