// Per-request resource governance. A ResourceBudget extends the CancelToken
// safepoint pattern (util/cancel.hpp) from "stop when told" to "stop when a
// ceiling is hit": engine stages call note_states / charge_bytes at their
// natural safepoints — between exploration chunks, after building a
// uniformized matrix, before a large solve — and unwind with a typed
// EngineFailure (state_budget_exceeded / memory_budget_exceeded) the moment a
// ceiling is exceeded, carrying the partial progress made so far.
//
// Byte accounting is approximate by design: stages charge the dominant
// allocations (state table, transition triplets, CSR matrices), not every
// byte, so the ceiling bounds the engine's working set to within a small
// constant factor. Counters are relaxed atomics — safe to charge from the
// parallel solver fan-out.
#pragma once

#include <atomic>
#include <cstddef>

#include "util/failure.hpp"

namespace autosec::util {

class ResourceBudget {
 public:
  /// Ceilings of 0 mean "unlimited" for that dimension.
  explicit ResourceBudget(size_t max_states = 0, size_t max_bytes = 0)
      : max_states_(max_states), max_bytes_(max_bytes) {}

  size_t max_states() const { return max_states_.load(std::memory_order_relaxed); }
  size_t max_bytes() const { return max_bytes_.load(std::memory_order_relaxed); }

  /// Swap the ceilings of a live budget — how a hot config reload retunes a
  /// long-lived admission gate without dropping the bytes already reserved.
  /// Work admitted under the old ceilings keeps its reservations; the new
  /// ceilings apply to every charge from now on.
  void set_ceilings(size_t max_states, size_t max_bytes) {
    max_states_.store(max_states, std::memory_order_relaxed);
    max_bytes_.store(max_bytes, std::memory_order_relaxed);
  }

  /// True when a state-count ceiling is armed and `count` exceeds it. The
  /// explorer composes its own EngineFailure (with frontier size and last
  /// command) instead of calling a throwing helper.
  bool states_exceeded(size_t count) const {
    const size_t ceiling = max_states();
    return ceiling != 0 && count > ceiling;
  }

  /// Record `bytes` of engine allocations attributed to `stage`; throws
  /// EngineFailure(kMemoryBudgetExceeded) once the running total passes the
  /// byte ceiling. The failed charge is still recorded so diagnostics show
  /// the total that tripped the ceiling.
  void charge_bytes(size_t bytes, const char* stage) {
    const size_t total =
        charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Peak under concurrent charges: a stale max just loses one update; the
    // loop converges because totals only grow.
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (total > peak &&
           !peak_.compare_exchange_weak(peak, total, std::memory_order_relaxed)) {
    }
    const size_t ceiling = max_bytes();
    if (ceiling != 0 && total > ceiling) {
      FailureProgress progress;
      progress.limit = ceiling;
      progress.charged_bytes = total;
      throw EngineFailure(
          FailureCode::kMemoryBudgetExceeded, stage,
          std::string(stage) + ": engine memory budget exceeded (" +
              std::to_string(total) + " bytes charged, ceiling " +
              std::to_string(ceiling) + ")",
          progress);
    }
  }

  /// Admission-control variant of charge_bytes: reserve `bytes` against the
  /// ceiling without throwing. On success the bytes stay charged (pair with
  /// release_bytes when the admitted work completes); when the reservation
  /// would cross the ceiling it is rolled back and false is returned, so the
  /// caller can shed the work instead of unwinding mid-flight.
  bool try_charge_bytes(size_t bytes) {
    const size_t total =
        charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const size_t ceiling = max_bytes();
    if (ceiling != 0 && total > ceiling) {
      charged_.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (total > peak &&
           !peak_.compare_exchange_weak(peak, total, std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Return bytes to the budget when a stage frees a tracked allocation.
  void release_bytes(size_t bytes) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t charged_bytes() const { return charged_.load(std::memory_order_relaxed); }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

 private:
  // Atomic so a hot config reload can retune ceilings while requests charge.
  std::atomic<size_t> max_states_;
  std::atomic<size_t> max_bytes_;
  std::atomic<size_t> charged_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace autosec::util
