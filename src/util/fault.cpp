#include "util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/numeric.hpp"
#include "util/progress.hpp"

namespace autosec::util::fault {

namespace {

// Bits of the combined fast-path flag word: one relaxed load answers both
// "is anything armed?" and "is poll accounting on?".
constexpr uint8_t kArmed = 1;
constexpr uint8_t kAccounting = 2;

struct ArmedSite {
  std::string name;
  uint64_t fire_on_visit = 1;  // 1-based visit index that fires
  uint64_t visits = 0;
  bool fired = false;
};

struct Registry {
  std::atomic<uint8_t> flags{0};
  std::atomic<uint64_t> polls{0};
  std::mutex mutex;
  std::vector<ArmedSite> sites;

  Registry() {
    if (const char* spec = std::getenv("AUTOSEC_FAULT")) {
      // Environment arming happens before any engine work; a malformed spec
      // must fail loudly, not silently run without the fault.
      arm_locked(spec);
    }
  }

  void arm_locked(const std::string& spec) {
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string field = spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (field.empty()) continue;
      const size_t colon = field.find(':');
      const std::string name = field.substr(0, colon);
      uint64_t nth = 1;
      if (colon != std::string::npos) {
        const std::string count = field.substr(colon + 1);
        const std::optional<int64_t> parsed = util::parse_int(count);
        if (!parsed || *parsed < 1) {
          throw std::invalid_argument("AUTOSEC_FAULT: bad count '" + count + "'");
        }
        nth = static_cast<uint64_t>(*parsed);
      }
      bool known = false;
      for (const std::string& site : known_sites()) {
        if (site == name) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::invalid_argument("AUTOSEC_FAULT: unknown site '" + name + "'");
      }
      set_site(name, nth);
    }
    refresh_flags();
  }

  void set_site(const std::string& name, uint64_t nth) {
    for (ArmedSite& site : sites) {
      if (site.name == name) {
        site.fire_on_visit = nth;
        site.visits = 0;
        site.fired = false;
        return;
      }
    }
    sites.push_back({name, nth, 0, false});
  }

  void refresh_flags() {
    bool any = false;
    for (const ArmedSite& site : sites) any = any || !site.fired;
    uint8_t expected = flags.load(std::memory_order_relaxed);
    uint8_t updated;
    do {
      updated = static_cast<uint8_t>((expected & kAccounting) | (any ? kArmed : 0));
    } while (!flags.compare_exchange_weak(expected, updated,
                                          std::memory_order_relaxed));
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

bool triggered(const char* site) {
  // Every fault poll is an engine safepoint: bump the process-wide progress
  // epoch so the serving watchdog can distinguish hung from slow.
  progress::bump();
  Registry& reg = registry();
  const uint8_t flags = reg.flags.load(std::memory_order_relaxed);
  if (flags & kAccounting) reg.polls.fetch_add(1, std::memory_order_relaxed);
  if (!(flags & kArmed)) return false;

  std::lock_guard<std::mutex> lock(reg.mutex);
  for (ArmedSite& armed : reg.sites) {
    if (armed.fired || armed.name != site) continue;
    armed.visits += 1;
    if (armed.visits < armed.fire_on_visit) return false;
    armed.fired = true;  // one-shot: the process keeps working after the hit
    reg.refresh_flags();
    return true;
  }
  return false;
}

void arm_site(const std::string& site, uint64_t nth) {
  if (nth == 0) throw std::invalid_argument("fault::arm_site: nth must be >= 1");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.set_site(site, nth);
  reg.refresh_flags();
}

void arm(const std::string& spec) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.arm_locked(spec);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sites.clear();
  reg.refresh_flags();
}

const std::vector<std::string>& known_sites() {
  // One entry per engine poll point; keep docs/robustness.md's cookbook table
  // in sync when adding a site.
  static const std::vector<std::string> sites = {
      "explore.alloc",       // explorer: allocation failure mid-BFS
      "uniformize.alloc",    // uniformization: transposed-matrix allocation
      "solve.cancel",        // session: cancellation at the solve boundary
      "solve.hang",          // session: hang (no safepoint crossed) at solve
      "krylov.breakdown",    // BiCGSTAB reports breakdown (forces rung 2)
      "gauss_seidel.diverge",  // Gauss-Seidel reports divergence (forces rung 3)
      "power.diverge",       // power rung reports divergence (whole ladder fails)
      "stationary.diverge",  // stationary Gauss-Seidel fails (power fallback)
      "serve.dispatch.alloc",  // serve: allocation failure before dispatch
  };
  return sites;
}

void set_accounting(bool enabled) {
  Registry& reg = registry();
  uint8_t expected = reg.flags.load(std::memory_order_relaxed);
  uint8_t updated;
  do {
    updated = static_cast<uint8_t>(enabled ? (expected | kAccounting)
                                           : (expected & ~kAccounting));
  } while (!reg.flags.compare_exchange_weak(expected, updated,
                                            std::memory_order_relaxed));
}

uint64_t poll_count() {
  return registry().polls.load(std::memory_order_relaxed);
}

void reset_poll_count() {
  registry().polls.store(0, std::memory_order_relaxed);
}

}  // namespace autosec::util::fault
