// Minimal leveled logging for the autosec library.
//
// The library is used both interactively (examples, benches) and inside unit
// tests; logging therefore goes to stderr, is off by default above `warn`, and
// is controlled at runtime via set_level() or the AUTOSEC_LOG environment
// variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace autosec::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold. Messages below this level are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name ("debug", "warn", ...). Unknown names map to kWarn.
LogLevel parse_log_level(std::string_view name);

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Stream-style log statement collector:
///   AUTOSEC_LOG_INFO("ctmc") << "explored " << n << " states";
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= log_level()) detail::emit(level_, component_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace autosec::util

#define AUTOSEC_LOG_TRACE(component) \
  ::autosec::util::LogLine(::autosec::util::LogLevel::kTrace, component)
#define AUTOSEC_LOG_DEBUG(component) \
  ::autosec::util::LogLine(::autosec::util::LogLevel::kDebug, component)
#define AUTOSEC_LOG_INFO(component) \
  ::autosec::util::LogLine(::autosec::util::LogLevel::kInfo, component)
#define AUTOSEC_LOG_WARN(component) \
  ::autosec::util::LogLine(::autosec::util::LogLevel::kWarn, component)
#define AUTOSEC_LOG_ERROR(component) \
  ::autosec::util::LogLine(::autosec::util::LogLevel::kError, component)
