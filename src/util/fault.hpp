// Deterministic fault injection. Engine stages poll named sites at their
// boundaries — `if (util::fault::triggered("explore.alloc")) throw ...` — and
// the registry decides whether the nth visit of a site should fire. Sites are
// compiled in always; the disarmed fast path is one relaxed atomic load, so
// hooks are cheap enough to leave in release builds (the bench gate asserts
// they stay below 2% of Fig. 5 wall time).
//
// Arming:
//  * environment: AUTOSEC_FAULT=<site>[:<n>][,<site>[:<n>]...] — parsed once,
//    on first registry use. `n` is the 1-based visit that fires (default 1).
//  * programmatic: arm_site("krylov.breakdown", 1) / disarm_all() — what the
//    unit tests and `autosec-verify --faults` use.
//
// A site fires exactly once, on its nth visit, then disarms itself: one
// request absorbs the fault and the process keeps serving — the property
// `autosec-verify --faults` proves end to end. The behaviour at each site
// lives at the call site (throw std::bad_alloc, report solver breakdown,
// throw Cancelled); the registry only answers "does this visit fire?".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autosec::util::fault {

/// True when `site`'s armed visit count has been reached. Increments the
/// site's visit counter when armed; a plain relaxed load when nothing is
/// armed. Site names are compile-time literals by convention.
bool triggered(const char* site);

/// Arm one site to fire on its `nth` visit (1-based). Re-arming a site
/// resets its visit counter.
void arm_site(const std::string& site, uint64_t nth = 1);

/// Parse and arm an AUTOSEC_FAULT-style spec: "site[:n][,site[:n]...]".
/// Throws std::invalid_argument on malformed specs or unknown sites.
void arm(const std::string& spec);

/// Disarm every site and reset visit counters. Poll accounting state is
/// unaffected.
void disarm_all();

/// Every site the engine polls, for `autosec-verify --faults` iteration and
/// for validating AUTOSEC_FAULT specs.
const std::vector<std::string>& known_sites();

/// Poll accounting for the bench overhead gate: when enabled, every
/// triggered() call increments a counter so a bench can compute
/// polls x per-poll-cost / wall. Disabled by default (and in production).
void set_accounting(bool enabled);
uint64_t poll_count();
void reset_poll_count();

}  // namespace autosec::util::fault
