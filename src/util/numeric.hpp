// Locale-independent numeric parsing. The engine's inputs — .arch files,
// PRISM model literals, CLI flag values — are defined in the C locale, but
// std::stod/std::stoi honour the process's LC_NUMERIC: under a comma-decimal
// locale (de_DE, fr_FR, ...) "1.5" stops parsing at the dot and rate tables
// silently load wrong. These helpers are built on std::from_chars and never
// consult the locale.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace autosec::util {

/// Parse a double, requiring the whole string to be consumed. Accepts an
/// optional leading '+' (std::from_chars itself does not); rejects leading
/// whitespace, trailing garbage, hex floats and empty input. Returns nullopt
/// on any failure, including out-of-range magnitudes.
std::optional<double> parse_double(std::string_view text);

/// Parse a base-10 signed integer with the same whole-string contract.
std::optional<int64_t> parse_int(std::string_view text);

}  // namespace autosec::util
