#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "util/metrics.hpp"

namespace autosec::util {

namespace {

// True on threads currently executing inside a parallel region (pool workers
// permanently; the calling thread while it participates). Nested
// parallel_for calls from such threads run inline.
thread_local bool t_in_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  const size_t lanes = std::max<size_t>(threads, 1);
  workers_.reserve(lanes - 1);
  for (size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::run_chunks() {
  size_t chunks = 0;
  while (true) {
    const size_t start = next_.fetch_add(chunk_, std::memory_order_relaxed);
    if (start >= end_) break;
    const size_t stop = std::min(start + chunk_, end_);
    ++chunks;
    try {
      (*fn_)(start, stop);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  return chunks;
}

void ThreadPool::worker_loop() {
  t_in_parallel_region = true;  // workers never open their own region
  uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) return;
      seen = job_id_;
    }
    const size_t chunks = run_chunks();
    // Lane occupancy: a worker that drew zero chunks was an idle lane for
    // this job — the gap between jobs and busy lanes is pool oversizing.
    if (chunks > 0) {
      metrics::registry().add("pool.worker_chunks", chunks);
      metrics::registry().add("pool.busy_worker_lanes");
    } else {
      metrics::registry().add("pool.idle_worker_lanes");
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(size_t begin, size_t end, size_t grain,
                              const ChunkFn& fn) {
  if (begin >= end) return;
  const size_t count = end - begin;
  const size_t min_chunk = std::max<size_t>(grain, 1);
  if (t_in_parallel_region || workers_.empty() || count <= min_chunk) {
    fn(begin, end);
    return;
  }

  std::lock_guard<std::mutex> call_lock(call_mutex_);
  // ~4 chunks per lane for load balance; never below the grain.
  const size_t chunk =
      std::max(min_chunk, (count + 4 * size() - 1) / (4 * size()));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next_.store(begin, std::memory_order_relaxed);
    end_ = end;
    chunk_ = chunk;
    fn_ = &fn;
    error_ = nullptr;
    workers_done_ = 0;
    ++job_id_;
  }
  work_cv_.notify_all();
  {
    metrics::Registry& metrics = metrics::registry();
    if (metrics.enabled()) {
      metrics.add("pool.jobs");
      metrics.add("pool.indices", count);
      metrics.gauge("pool.lanes", static_cast<double>(size()));
    }
  }

  t_in_parallel_region = true;
  const size_t caller_chunks = run_chunks();
  t_in_parallel_region = false;
  metrics::registry().add("pool.caller_chunks", caller_chunks);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
size_t g_pool_size = 0;       // lanes of the live pool
size_t g_thread_override = 0; // 0 = automatic

size_t automatic_thread_count() {
  if (const char* env = std::getenv("AUTOSEC_THREADS")) {
    char* tail = nullptr;
    const long parsed = std::strtol(env, &tail, 10);
    if (tail != env && *tail == '\0' && parsed > 0) {
      return std::min<long>(parsed, 1024);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

size_t thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_thread_override > 0 ? g_thread_override : automatic_thread_count();
}

void set_thread_count(size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_thread_override = threads;
  g_pool.reset();  // rebuilt to the new size on next use
  g_pool_size = 0;
}

void abandon_pool_after_fork() noexcept {
  // Single-threaded context by contract (immediately after fork): leak the
  // inherited pool — its ~ThreadPool would block joining workers that exist
  // only in the parent — and reset the mutex in case a parent thread held it
  // at fork time.
  new (&g_pool_mutex) std::mutex();
  (void)g_pool.release();
  g_pool_size = 0;
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const size_t want =
      g_thread_override > 0 ? g_thread_override : automatic_thread_count();
  if (!g_pool || g_pool_size != want) {
    g_pool.reset();  // join old workers before starting new ones
    g_pool = std::make_unique<ThreadPool>(want);
    g_pool_size = want;
  }
  return *g_pool;
}

void parallel_for(size_t begin, size_t end, size_t grain, const ChunkFn& fn) {
  if (begin >= end) return;
  if (t_in_parallel_region || end - begin <= std::max<size_t>(grain, 1)) {
    fn(begin, end);
    return;
  }
  global_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace autosec::util
