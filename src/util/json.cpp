#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/numeric.hpp"

namespace autosec::util {

void json_escape(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;  // includes UTF-8 continuation bytes
        }
    }
  }
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  json_escape(out, text);
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) throw std::runtime_error("json_number: to_chars failed");
  return std::string(buffer, end);
}

std::string json_number(int64_t value) { return std::to_string(value); }
std::string json_number(uint64_t value) { return std::to_string(value); }

// --- JsonWriter ---------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& level = stack_.back();
  const bool single_line = inlined();
  if (level.entries > 0) out_ += single_line ? ", " : ",";
  level.entries += 1;
  if (!single_line) {
    out_ += '\n';
    out_.append(indent_ * stack_.size(), ' ');
  }
}

JsonWriter& JsonWriter::open(char bracket, bool inlined_subtree) {
  separate();
  // An inline parent forces every child inline too.
  const bool parent_inline = !stack_.empty() && stack_.back().inlined;
  stack_.push_back({inlined_subtree || parent_inline, 0});
  out_ += bracket;
  return *this;
}

JsonWriter& JsonWriter::close(char bracket) {
  if (stack_.empty()) throw std::logic_error("JsonWriter: unbalanced close");
  const Level level = stack_.back();
  stack_.pop_back();
  if (level.entries > 0 && indent_ > 0 && !level.inlined) {
    out_ += '\n';
    out_.append(indent_ * stack_.size(), ' ');
  }
  out_ += bracket;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  out_ += json_quote(name);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::nullptr_t) {
  separate();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  separate();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  separate();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  out_ += json_quote(v);
  return *this;
}

// --- JsonValue builders -------------------------------------------------

JsonValue JsonValue::boolean(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::number(int64_t v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = static_cast<double>(v);
  out.integer_ = v;
  out.integral_ = true;
  return out;
}

JsonValue JsonValue::number(uint64_t v) {
  if (v <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return number(static_cast<int64_t>(v));
  }
  return number(static_cast<double>(v));
}

JsonValue JsonValue::string(std::string_view v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::string(v);
  return out;
}

JsonValue JsonValue::array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

// --- JsonValue accessors ------------------------------------------------

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw JsonError(std::string("json: value is not ") + wanted, 0);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return integral_ ? static_cast<double>(integer_) : number_;
}

int64_t JsonValue::as_integer() const {
  if (!is_integer()) kind_error("an integer");
  return integer_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}

size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  if (kind_ != Kind::kArray) kind_error("an array");
  if (index >= array_.size()) throw JsonError("json: array index out of range", 0);
  return array_[index];
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("an array");
  array_.push_back(std::move(v));
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("an object");
  for (Member& member : object_) {
    if (member.first == key) return member.second;
  }
  object_.emplace_back(std::string(key), JsonValue());
  return object_.back().second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->as_number() : fallback;
}

int64_t JsonValue::int_or(std::string_view key, int64_t fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_integer() ? member->as_integer() : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_bool() ? member->as_bool() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->as_string()
                                                  : std::string(fallback);
}

void JsonValue::write(JsonWriter& writer) const {
  switch (kind_) {
    case Kind::kNull: writer.value(nullptr); return;
    case Kind::kBool: writer.value(bool_); return;
    case Kind::kNumber:
      if (integral_) {
        writer.value(integer_);
      } else {
        writer.value(number_);
      }
      return;
    case Kind::kString: writer.value(std::string_view(string_)); return;
    case Kind::kArray:
      writer.begin_array();
      for (const JsonValue& entry : array_) entry.write(writer);
      writer.end_array();
      return;
    case Kind::kObject:
      writer.begin_object();
      for (const Member& member : object_) {
        writer.key(member.first);
        member.second.write(writer);
      }
      writer.end_object();
      return;
  }
  throw std::logic_error("json: corrupt kind");
}

std::string JsonValue::dump(int indent) const {
  JsonWriter writer(indent);
  write(writer);
  return writer.take();
}

// --- parser -------------------------------------------------------------

namespace {

constexpr size_t kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (position_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("json parse error: " + message, position_);
  }

  void skip_whitespace() {
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++position_;
    }
  }

  char peek() {
    if (position_ >= text_.size()) fail("unexpected end of input");
    return text_[position_];
  }

  bool consume(char expected) {
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  void expect(char expected) {
    if (!consume(expected)) {
      fail(std::string("expected '") + expected + "'");
    }
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(position_, word.size()) == word) {
      position_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return JsonValue::string(parse_string());
    if (consume_word("true")) return JsonValue::boolean(true);
    if (consume_word("false")) return JsonValue::boolean(false);
    if (consume_word("null")) return JsonValue::null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object(size_t depth) {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_whitespace();
    if (consume('}')) return out;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out[key] = parse_value(depth + 1);
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return out;
    }
  }

  JsonValue parse_array(size_t depth) {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_whitespace();
    if (consume(']')) return out;
    while (true) {
      out.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return out;
    }
  }

  void append_utf8(std::string& out, uint32_t code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  uint32_t parse_hex4() {
    if (position_ + 4 > text_.size()) fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[position_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (position_ >= text_.size()) fail("unterminated string");
      const char c = text_[position_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (position_ >= text_.size()) fail("truncated escape");
      const char escape = text_[position_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00-\uDFFF.
            if (!consume('\\') || !consume('u')) fail("unpaired surrogate");
            const uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = position_;
    bool integral = true;
    if (consume('-')) {}
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c >= '0' && c <= '9') {
        ++position_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++position_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, position_ - start);
    if (integral) {
      if (const std::optional<int64_t> value = parse_int(token)) {
        return JsonValue::number(*value);
      }
      // Out-of-range integer literal: fall through to double.
    }
    const std::optional<double> value = parse_double(token);
    if (!value) fail("malformed number");
    return JsonValue::number(*value);
  }

  std::string_view text_;
  size_t position_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace autosec::util
