// Fixed-size thread pool with a blocking parallel_for over index ranges —
// the execution backend of the staged analysis engine. Design constraints:
//
//  * Determinism: parallel_for only partitions the index range; a chunk
//    [i, j) always runs the same code on the same indices, so any kernel
//    whose chunks write disjoint outputs produces bit-identical results at
//    1, 2 or N threads. Kernels that would need a reduction across chunks
//    (dot products, scatter-style SpMV) are deliberately left serial.
//  * One pool per process: workers are started once and reused; a
//    parallel_for from inside a worker (nested parallelism) degrades to a
//    serial loop instead of deadlocking or oversubscribing.
//  * Thread count: set_thread_count() override, else the AUTOSEC_THREADS
//    environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autosec::util {

/// A chunk handler: process indices [begin, end).
using ChunkFn = std::function<void(size_t begin, size_t end)>;

class ThreadPool {
 public:
  /// Pool with `threads` total execution lanes (including the calling
  /// thread); clamped to >= 1. A 1-thread pool starts no workers and runs
  /// everything inline.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  size_t size() const { return workers_.size() + 1; }

  /// Run fn over [begin, end) split into chunks of at least `grain` indices;
  /// blocks until every chunk is done. The calling thread participates. The
  /// first exception thrown by a chunk is rethrown here after the range is
  /// drained. Serial fast paths: single-lane pool, range <= grain, or a call
  /// from inside another parallel_for (nested regions run inline).
  void parallel_for(size_t begin, size_t end, size_t grain, const ChunkFn& fn);

 private:
  void worker_loop();
  size_t run_chunks();  ///< returns chunks executed by this lane

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  uint64_t job_id_ = 0;        // bumped per parallel_for; workers watch it
  size_t workers_done_ = 0;    // workers finished with the current job

  // Current job (valid while a parallel_for is in flight).
  std::atomic<size_t> next_{0};
  size_t end_ = 0;
  size_t chunk_ = 1;
  const ChunkFn* fn_ = nullptr;
  std::exception_ptr error_;

  std::mutex call_mutex_;  // serializes top-level parallel_for calls
};

/// Resolved engine thread count: set_thread_count() override if set, else
/// AUTOSEC_THREADS, else hardware concurrency (>= 1 always).
size_t thread_count();

/// Override the engine thread count (0 restores the automatic choice). The
/// process-wide pool is rebuilt on the next use. Not safe to call while
/// parallel work is in flight.
void set_thread_count(size_t threads);

/// The process-wide pool, sized to thread_count() (rebuilt after
/// set_thread_count()).
ThreadPool& global_pool();

/// Call in a freshly fork()ed child before any engine work: the inherited
/// pool object's worker threads do not exist in the child, so destroying it
/// normally would join threads that never run. This abandons the object
/// without joining (and re-initializes the guard mutex, which may have been
/// snapshotted mid-acquisition); the next parallel_for builds a fresh pool.
void abandon_pool_after_fork() noexcept;

/// global_pool().parallel_for with the serial fast paths applied first.
void parallel_for(size_t begin, size_t end, size_t grain, const ChunkFn& fn);

}  // namespace autosec::util
