// Plain-text table printer used by the figure/table benches and examples to
// print the paper's tables in an aligned, diff-friendly form, plus a tiny CSV
// writer for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace autosec::util {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  /// `headers` defines the column count; rows must match it.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  size_t row_count() const { return rows_.size(); }

  /// Render with a header rule, two spaces between columns.
  std::string to_string() const;

  /// Render as CSV (no quoting of separators; callers use plain cells).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autosec::util
