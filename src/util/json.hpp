// Shared JSON emission and parsing for every machine-readable surface of the
// engine: --metrics-json, BENCH_*.json, and the `autosec serve` v1 protocol.
// One escaping routine and one number formatter, so model/property names with
// quotes or backslashes round-trip identically everywhere.
//
//  * JsonWriter — streaming writer with explicit layout control (multiline
//    with indent, or inline subtrees), used by util::metrics for its stable
//    human-diffable format.
//  * JsonValue  — a small document tree (null/bool/number/string/array/
//    object) with an insertion-order-preserving object, a strict parser, and
//    a compact dump; the request/response currency of src/service.
//
// Numbers are written with std::to_chars (shortest round-trip form, locale
// independent) and parsed with util::parse_double/parse_int; non-finite
// doubles serialize as null, matching the historical metrics convention.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autosec::util {

/// Append `text` to `out` with JSON string escaping ("), (\), control
/// characters as \n/\t/\uXXXX. Bytes >= 0x20 pass through (UTF-8 safe).
void json_escape(std::string& out, std::string_view text);

/// `text` as a quoted, escaped JSON string literal.
std::string json_quote(std::string_view text);

/// Shortest round-trip decimal form of `value`; "null" for NaN/inf (JSON has
/// no non-finite literals).
std::string json_number(double value);
std::string json_number(int64_t value);
std::string json_number(uint64_t value);

/// Streaming JSON writer. `indent > 0` lays containers out one entry per
/// line; begin_inline_object/array keeps a subtree on a single line (entries
/// separated by ", ") — the metrics format's per-span records. `indent == 0`
/// writes the whole document inline (NDJSON responses).
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object() { return open('{', false); }
  JsonWriter& begin_inline_object() { return open('{', true); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('[', false); }
  JsonWriter& begin_inline_array() { return open('[', true); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::nullptr_t);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  struct Level {
    bool inlined = false;
    size_t entries = 0;
  };

  JsonWriter& open(char bracket, bool inlined);
  JsonWriter& close(char bracket);
  /// Comma/newline/indent before the next entry of the current container.
  void separate();
  bool inlined() const { return indent_ == 0 || (!stack_.empty() && stack_.back().inlined); }

  int indent_;
  std::string out_;
  std::vector<Level> stack_;
  bool after_key_ = false;
};

/// Parse or structural error; `position` is the byte offset into the input.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, size_t position)
      : std::runtime_error(message), position_(position) {}
  size_t position() const { return position_; }

 private:
  size_t position_ = 0;
};

/// A parsed or programmatically built JSON document. Objects preserve
/// insertion order (and `dump` reproduces it), so emitted schemas are stable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue number(int64_t v);
  static JsonValue number(uint64_t v);
  static JsonValue number(int v) { return number(static_cast<int64_t>(v)); }
  static JsonValue string(std::string_view v);
  static JsonValue array();
  static JsonValue object();

  /// Strict parser over the whole input (trailing whitespace allowed,
  /// anything else throws JsonError). Nesting is capped at 128 levels.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  /// Number that was written without '.' or exponent and fits int64.
  bool is_integer() const { return kind_ == Kind::kNumber && integral_; }

  bool as_bool() const;
  double as_number() const;
  int64_t as_integer() const;  ///< throws unless is_integer()
  const std::string& as_string() const;

  // --- arrays.
  size_t size() const;  ///< entries of an array or object
  const JsonValue& at(size_t index) const;
  void push_back(JsonValue v);  ///< null promotes to array

  // --- objects.
  const std::vector<Member>& members() const;
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Insert-or-overwrite, preserving first-insertion order; null promotes to
  /// an object, so `doc["a"]["b"] = ...` builds nested objects.
  JsonValue& operator[](std::string_view key);

  // --- typed member conveniences for protocol parsing (defaults on absent).
  double number_or(std::string_view key, double fallback) const;
  int64_t int_or(std::string_view key, int64_t fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, std::string_view fallback) const;

  /// Serialize; indent == 0 is the compact one-line form used for NDJSON.
  std::string dump(int indent = 0) const;
  /// Emit into an open writer (the value in the current position).
  void write(JsonWriter& writer) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t integer_ = 0;
  bool integral_ = false;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

}  // namespace autosec::util
