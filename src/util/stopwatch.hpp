// Wall-clock stopwatch used by the benches to report build/check runtimes
// (the paper's Section 4 correlates runtime with state count).
#pragma once

#include <chrono>

namespace autosec::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing from now.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace autosec::util
