#include "util/stopwatch.hpp"

namespace autosec::util {

void Stopwatch::reset() { start_ = Clock::now(); }

double Stopwatch::elapsed_seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

double Stopwatch::elapsed_ms() const { return elapsed_seconds() * 1000.0; }

}  // namespace autosec::util
