#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace autosec::util {

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_sig(double value, int significant_digits) {
  if (significant_digits < 1) significant_digits = 1;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", significant_digits, value);
  return buffer;
}

std::string format_percent(double ratio, int significant_digits) {
  return format_sig(ratio * 100.0, significant_digits) + "%";
}

}  // namespace autosec::util
