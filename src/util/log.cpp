#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace autosec::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("AUTOSEC_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

namespace detail {

void emit(LogLevel level, std::string_view component, std::string_view message) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail

}  // namespace autosec::util
