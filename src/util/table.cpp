#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace autosec::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable row has wrong number of cells");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace autosec::util
