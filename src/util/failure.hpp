// Typed engine failures. Every way the engine can legitimately give up —
// resource budget exhausted, allocation failure, solver divergence, numerical
// blow-up — unwinds as an EngineFailure carrying a stable error code, the
// pipeline stage that observed it, and whatever partial progress the stage
// had made (states explored, solver iterations, final residual). The serving
// layer maps the code straight into the v1 error envelope; the CLI prints it
// as a structured diagnostic; tests assert on the code instead of matching
// message strings. See docs/robustness.md for the full taxonomy.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace autosec::util {

enum class FailureCode {
  kStateBudgetExceeded,   ///< exploration hit the state-count ceiling
  kMemoryBudgetExceeded,  ///< tracked engine allocations hit the byte ceiling
  kOom,                   ///< a real std::bad_alloc surfaced inside a stage
  kSolverDiverged,        ///< every solver rung failed to converge
  kNumericalError,        ///< NaN/Inf detected in a result vector
  kCancelled,             ///< cooperative cancellation (deadline / drain)
  kInternal,              ///< an unexpected exception crossed a stage boundary
};

/// Wire-stable name of a code; doubles as the serve error-envelope code.
constexpr const char* failure_code_name(FailureCode code) {
  switch (code) {
    case FailureCode::kStateBudgetExceeded: return "state_budget_exceeded";
    case FailureCode::kMemoryBudgetExceeded: return "memory_budget_exceeded";
    case FailureCode::kOom: return "oom";
    case FailureCode::kSolverDiverged: return "solver_diverged";
    case FailureCode::kNumericalError: return "numerical_error";
    case FailureCode::kCancelled: return "cancelled";
    case FailureCode::kInternal: return "internal_error";
  }
  return "internal_error";
}

/// Partial progress at the moment of failure. Only the fields the failing
/// stage can meaningfully report are set; everything else stays nullopt and
/// is omitted from serialized diagnostics.
struct FailureProgress {
  std::optional<size_t> states_explored;  ///< states interned before the stop
  std::optional<size_t> frontier_size;    ///< BFS frontier still unexpanded
  std::optional<std::string> last_command;  ///< last model command fired
  std::optional<size_t> iterations;       ///< solver iterations performed
  std::optional<double> residual;         ///< final residual / max-norm delta
  std::optional<size_t> limit;            ///< the budget ceiling that tripped
  std::optional<size_t> charged_bytes;    ///< tracked bytes at the stop
};

class EngineFailure : public std::runtime_error {
 public:
  EngineFailure(FailureCode code, std::string stage, const std::string& message,
                FailureProgress progress = {})
      : std::runtime_error(message),
        code_(code),
        stage_(std::move(stage)),
        progress_(std::move(progress)) {}

  FailureCode code() const { return code_; }
  const char* code_name() const { return failure_code_name(code_); }
  const std::string& stage() const { return stage_; }
  const FailureProgress& progress() const { return progress_; }

 private:
  FailureCode code_;
  std::string stage_;
  FailureProgress progress_;
};

}  // namespace autosec::util
