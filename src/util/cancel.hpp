// Cooperative cancellation for long-running engine work. A CancelToken is
// shared between a controller (the serving layer, a signal handler) and the
// compute kernels; the kernels poll expired() at natural safepoints — between
// solver sweeps, between uniformization steps, between property solves — and
// unwind with util::Cancelled when the token has been cancelled or its
// wall-clock deadline has passed.
//
// Polling cost is two relaxed atomic loads, plus one steady_clock read only
// when a deadline is armed, so tokens are cheap enough to check every sweep.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace autosec::util {

/// Thrown by engine layers when a CancelToken expires mid-computation. The
/// serving layer maps this to a structured "timeout" error; one-shot callers
/// see it as an ordinary exception.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& stage)
      : std::runtime_error("cancelled during " + stage), stage_(stage) {}
  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

class CancelToken {
 public:
  /// Manual cancellation (drain, client disconnect). Safe from any thread.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm (or re-arm) a wall-clock deadline `timeout` from now; the token
  /// counts as expired once the deadline passes.
  void set_deadline_after(std::chrono::nanoseconds timeout) noexcept {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
            timeout.count(),
        std::memory_order_relaxed);
  }

  /// Disarm the deadline and clear a manual cancel — tokens are reusable
  /// across requests on an otherwise idle session.
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           deadline;
  }

  /// Throw Cancelled(stage) when expired; the safepoint primitive.
  void check(const char* stage) const {
    if (expired()) throw Cancelled(stage);
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace autosec::util
