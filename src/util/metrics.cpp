#include "util/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace autosec::util::metrics {

namespace {

// Per-thread stack of open span names; a span records under the '/'-joined
// path of the stack at the time it closes.
thread_local std::vector<std::string> t_span_stack;

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literals; clamp to null, which readers can spot.
    return "null";
  }
  std::ostringstream stream;
  stream.precision(std::numeric_limits<double>::max_digits10);
  stream << value;
  return stream.str();
}

}  // namespace

void Registry::add_slow(std::string_view name, uint64_t delta) {
  std::atomic<uint64_t>* counter = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name),
                             std::make_unique<std::atomic<uint64_t>>(0)).first;
    }
    counter = it->second.get();
  }
  counter->fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_slow(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::record_span_slow(const std::string& path, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanStats& stats = spans_[path];
  stats.count += 1;
  stats.seconds += seconds;
}

uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->load(std::memory_order_relaxed);
}

std::optional<double> Registry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

SpanStats Registry::span_stats(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(path);
  return it == spans_.end() ? SpanStats{} : it->second;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"schema\": \"autosec-metrics-v1\",\n  \"spans\": {";
  bool first = true;
  for (const auto& [path, stats] : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, path);
    out += ": {\"count\": " + std::to_string(stats.count) +
           ", \"seconds\": " + format_double(stats.seconds) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + std::to_string(counter->load(std::memory_order_relaxed));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_json_string(out, name);
    out += ": " + format_double(value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void Registry::write_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("metrics: cannot write '" + path + "'");
  file << to_json();
  if (!file) throw std::runtime_error("metrics: write failed for '" + path + "'");
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  spans_.clear();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!registry().enabled()) return;
  active_ = true;
  t_span_stack.emplace_back(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::string path;
  for (const std::string& name : t_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  t_span_stack.pop_back();
  registry().record_span(path, seconds);
}

}  // namespace autosec::util::metrics
