#include "util/metrics.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/json.hpp"

namespace autosec::util::metrics {

namespace {

// Per-thread stack of open span names; a span records under the '/'-joined
// path of the stack at the time it closes.
thread_local std::vector<std::string> t_span_stack;

}  // namespace

void Registry::add_slow(std::string_view name, uint64_t delta) {
  std::atomic<uint64_t>* counter = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name),
                             std::make_unique<std::atomic<uint64_t>>(0)).first;
    }
    counter = it->second.get();
  }
  counter->fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_slow(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::record_span_slow(const std::string& path, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanStats& stats = spans_[path];
  stats.count += 1;
  stats.seconds += seconds;
}

uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->load(std::memory_order_relaxed);
}

std::optional<double> Registry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

SpanStats Registry::span_stats(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = spans_.find(path);
  return it == spans_.end() ? SpanStats{} : it->second;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Shared JSON emission (util/json.hpp): one escaping routine for every
  // machine-readable surface, non-finite doubles as null, spans kept on one
  // line each — the stable human-diffable layout BENCH_*.json diffs rely on.
  JsonWriter writer(2);
  writer.begin_object();
  writer.key("schema").value("autosec-metrics-v1");
  writer.key("spans").begin_object();
  for (const auto& [path, stats] : spans_) {
    writer.key(path).begin_inline_object();
    writer.key("count").value(stats.count);
    writer.key("seconds").value(stats.seconds);
    writer.end_object();
  }
  writer.end_object();
  writer.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) {
    writer.key(name).value(counter->load(std::memory_order_relaxed));
  }
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) {
    writer.key(name).value(value);
  }
  writer.end_object();
  writer.end_object();
  return writer.take() + "\n";
}

void Registry::write_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("metrics: cannot write '" + path + "'");
  file << to_json();
  if (!file) throw std::runtime_error("metrics: write failed for '" + path + "'");
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  spans_.clear();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!registry().enabled()) return;
  active_ = true;
  t_span_stack.emplace_back(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::string path;
  for (const std::string& name : t_span_stack) {
    if (!path.empty()) path += '/';
    path += name;
  }
  t_span_stack.pop_back();
  registry().record_span(path, seconds);
}

}  // namespace autosec::util::metrics
