// Graceful-drain signal plumbing for the serving layer. A process-wide flag
// plus a self-pipe: the SIGTERM/SIGINT handler calls request_drain(), which
// is async-signal-safe (one atomic store and one write() to the pipe), and
// blocking loops poll drain_fd() next to their input descriptors so a signal
// wakes them immediately instead of after the next request.
#pragma once

namespace autosec::util {

/// Install SIGTERM + SIGINT handlers that call request_drain(). Idempotent.
/// Only the serving entry points call this — library use never alters signal
/// dispositions.
void install_drain_signals();

/// Flag a drain request (callable from signal handlers and tests alike).
void request_drain() noexcept;

/// True once a drain has been requested.
bool drain_requested() noexcept;

/// Clear the flag and the pipe (test isolation between serve loops).
void reset_drain() noexcept;

/// Read end of the self-pipe: becomes readable when a drain is requested.
/// Poll it alongside input fds; never read it directly (reset_drain does).
int drain_fd() noexcept;

}  // namespace autosec::util
