// Graceful-drain signal plumbing for the serving layer. A process-wide flag
// plus a self-pipe: the SIGTERM/SIGINT handler calls request_drain(), which
// is async-signal-safe (one atomic store and one write() to the pipe), and
// blocking loops poll drain_fd() next to their input descriptors so a signal
// wakes them immediately instead of after the next request.
#pragma once

namespace autosec::util {

/// Install SIGTERM + SIGINT handlers that call request_drain(). Idempotent.
/// Only the serving entry points call this — library use never alters signal
/// dispositions.
void install_drain_signals();

/// Flag a drain request (callable from signal handlers and tests alike).
void request_drain() noexcept;

/// True once a drain has been requested.
bool drain_requested() noexcept;

/// Clear the flag and the pipe (test isolation between serve loops).
void reset_drain() noexcept;

/// Read end of the self-pipe: becomes readable when a drain is requested.
/// Poll it alongside input fds; never read it directly (reset_drain does).
int drain_fd() noexcept;

// --- hot-reload signal (SIGHUP), same self-pipe pattern as drain. A reload
// is a counter, not a flag: the config watcher consumes requests one batch at
// a time, and coalesced SIGHUPs (several before the watcher wakes) apply the
// file once — re-reading it twice would be idempotent anyway.

/// Install the SIGHUP handler that calls request_reload(). Idempotent; only
/// serve entry points with a --config file call this.
void install_reload_signal();

/// Flag a reload request (signal handlers and tests alike).
void request_reload() noexcept;

/// Number of reload requests so far; a watcher remembers the last count it
/// acted on and applies the config when the count advanced.
unsigned reload_count() noexcept;

/// Read end of the reload self-pipe: becomes readable when a reload is
/// requested. Poll it with a timeout; consume_reload() drains it.
int reload_fd() noexcept;

/// Drain the reload pipe and return true when any reload was pending since
/// the previous consume (the watcher's "apply now?" question).
bool consume_reload() noexcept;

}  // namespace autosec::util
