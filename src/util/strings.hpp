// Small string helpers shared by the parsers, writers and table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autosec::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char separator);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Join the pieces with `separator` between them.
std::string join(const std::vector<std::string>& pieces, std::string_view separator);

/// Lower-case an ASCII string.
std::string to_lower(std::string_view text);

/// printf-style double formatting with a fixed number of significant digits,
/// e.g. format_sig(0.0123456, 3) == "0.0123".
std::string format_sig(double value, int significant_digits);

/// Format a ratio as a percentage string, e.g. 0.122 -> "12.2%".
std::string format_percent(double ratio, int significant_digits = 3);

}  // namespace autosec::util
