#include "util/numeric.hpp"

#include <charconv>

namespace autosec::util {

namespace {

std::string_view strip_plus(std::string_view text) {
  // std::from_chars rejects a leading '+'; the historical std::stod sites
  // accepted it, so keep "+1.5" parsing.
  if (text.size() > 1 && text.front() == '+') text.remove_prefix(1);
  return text;
}

}  // namespace

std::optional<double> parse_double(std::string_view text) {
  text = strip_plus(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<int64_t> parse_int(std::string_view text) {
  text = strip_plus(text);
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

}  // namespace autosec::util
