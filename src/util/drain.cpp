#include "util/drain.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace autosec::util {

namespace {

std::atomic<bool> g_drain{false};
int g_pipe[2] = {-1, -1};
std::once_flag g_pipe_once;

void ensure_pipe() {
  std::call_once(g_pipe_once, [] {
    if (::pipe(g_pipe) != 0) {
      g_pipe[0] = g_pipe[1] = -1;
      return;
    }
    for (const int fd : g_pipe) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    }
  });
}

void drain_signal_handler(int /*signal*/) { request_drain(); }

}  // namespace

void install_drain_signals() {
  ensure_pipe();
  struct sigaction action = {};
  action.sa_handler = drain_signal_handler;
  ::sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked read()/poll() returns EINTR so the loop can
  // re-check drain_requested() even if the self-pipe write were lost.
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void request_drain() noexcept {
  g_drain.store(true, std::memory_order_relaxed);
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; the pipe is non-blocking, so a full pipe
    // (already signalled) is fine to ignore.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

bool drain_requested() noexcept {
  return g_drain.load(std::memory_order_relaxed);
}

void reset_drain() noexcept {
  g_drain.store(false, std::memory_order_relaxed);
  if (g_pipe[0] >= 0) {
    char buffer[16];
    while (::read(g_pipe[0], buffer, sizeof(buffer)) > 0) {
    }
  }
}

int drain_fd() noexcept {
  ensure_pipe();
  return g_pipe[0];
}

}  // namespace autosec::util
