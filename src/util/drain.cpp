#include "util/drain.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

namespace autosec::util {

namespace {

std::atomic<bool> g_drain{false};
int g_pipe[2] = {-1, -1};
std::once_flag g_pipe_once;

std::atomic<unsigned> g_reloads{0};
std::atomic<unsigned> g_reloads_consumed{0};
int g_reload_pipe[2] = {-1, -1};
std::once_flag g_reload_pipe_once;

void open_nonblocking_pipe(int fds[2]) {
  if (::pipe(fds) != 0) {
    fds[0] = fds[1] = -1;
    return;
  }
  for (int i = 0; i < 2; ++i) {
    const int flags = ::fcntl(fds[i], F_GETFL, 0);
    if (flags >= 0) ::fcntl(fds[i], F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fds[i], F_SETFD, FD_CLOEXEC);
  }
}

void ensure_pipe() {
  std::call_once(g_pipe_once, [] { open_nonblocking_pipe(g_pipe); });
}

void ensure_reload_pipe() {
  std::call_once(g_reload_pipe_once, [] { open_nonblocking_pipe(g_reload_pipe); });
}

void drain_signal_handler(int /*signal*/) { request_drain(); }

void reload_signal_handler(int /*signal*/) { request_reload(); }

}  // namespace

void install_drain_signals() {
  ensure_pipe();
  struct sigaction action = {};
  action.sa_handler = drain_signal_handler;
  ::sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked read()/poll() returns EINTR so the loop can
  // re-check drain_requested() even if the self-pipe write were lost.
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void request_drain() noexcept {
  g_drain.store(true, std::memory_order_relaxed);
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; the pipe is non-blocking, so a full pipe
    // (already signalled) is fine to ignore.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

bool drain_requested() noexcept {
  return g_drain.load(std::memory_order_relaxed);
}

void reset_drain() noexcept {
  g_drain.store(false, std::memory_order_relaxed);
  if (g_pipe[0] >= 0) {
    char buffer[16];
    while (::read(g_pipe[0], buffer, sizeof(buffer)) > 0) {
    }
  }
}

int drain_fd() noexcept {
  ensure_pipe();
  return g_pipe[0];
}

void install_reload_signal() {
  ensure_reload_pipe();
  struct sigaction action = {};
  action.sa_handler = reload_signal_handler;
  ::sigemptyset(&action.sa_mask);
  // SA_RESTART: unlike drain, a reload must not abort in-flight reads — the
  // watcher thread polls the self-pipe, nothing else needs the EINTR.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGHUP, &action, nullptr);
}

void request_reload() noexcept {
  g_reloads.fetch_add(1, std::memory_order_relaxed);
  if (g_reload_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_reload_pipe[1], &byte, 1);
  }
}

unsigned reload_count() noexcept {
  return g_reloads.load(std::memory_order_relaxed);
}

int reload_fd() noexcept {
  ensure_reload_pipe();
  return g_reload_pipe[0];
}

bool consume_reload() noexcept {
  if (g_reload_pipe[0] >= 0) {
    char buffer[16];
    while (::read(g_reload_pipe[0], buffer, sizeof(buffer)) > 0) {
    }
  }
  const unsigned seen = g_reloads.load(std::memory_order_relaxed);
  const unsigned consumed = g_reloads_consumed.exchange(seen, std::memory_order_relaxed);
  return seen != consumed;
}

}  // namespace autosec::util
