#include "ctmc/poisson.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

namespace autosec::ctmc {

double PoissonWeights::cdf(size_t k) const {
  if (k < left) return 0.0;
  const size_t top = std::min(k, right);
  double acc = 0.0;
  for (size_t j = left; j <= top; ++j) acc += weights[j - left];
  return acc;
}

PoissonWeights poisson_weights(double lambda, double epsilon) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("poisson_weights: lambda < 0");
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("poisson_weights: epsilon out of (0,1)");
  }

  PoissonWeights out;
  if (lambda == 0.0) {
    out.left = out.right = 0;
    out.weights = {1.0};
    out.captured_mass = 1.0;
    return out;
  }

  // pmf at the mode, via lgamma to stay finite for large lambda.
  const auto mode = static_cast<size_t>(std::floor(lambda));
  const double log_pmf_mode =
      -lambda + static_cast<double>(mode) * std::log(lambda) -
      std::lgamma(static_cast<double>(mode) + 1.0);
  const double pmf_mode = std::exp(log_pmf_mode);

  // Expand greedily from the mode, always adding the larger of the two
  // frontier weights, until mass >= 1 - epsilon. Kahan summation keeps the
  // captured mass accurate over the ~O(sqrt(lambda)) terms; the relative
  // frontier cutoff stops the expansion once further terms can no longer
  // change the sum (they would otherwise drag the window out to the far
  // tails for very large lambda).
  std::deque<double> weights = {pmf_mode};
  size_t left = mode;
  size_t right = mode;
  double mass = pmf_mode;
  double compensation = 0.0;
  auto accumulate = [&](double term) {
    const double y = term - compensation;
    const double t = mass + y;
    compensation = (t - mass) - y;
    mass = t;
  };
  double next_left = left > 0 ? pmf_mode * static_cast<double>(left) / lambda : 0.0;
  double next_right = pmf_mode * lambda / static_cast<double>(right + 1);

  while (mass < 1.0 - epsilon) {
    const double cutoff = mass * 1e-18;
    const bool left_dead = next_left <= cutoff;
    const bool right_dead = next_right <= cutoff;
    if (left_dead && right_dead) break;  // numeric exhaustion
    if (!left_dead && (right_dead || next_left >= next_right)) {
      weights.push_front(next_left);
      accumulate(next_left);
      --left;
      next_left = left > 0 ? weights.front() * static_cast<double>(left) / lambda : 0.0;
    } else {
      weights.push_back(next_right);
      accumulate(next_right);
      ++right;
      next_right = weights.back() * lambda / static_cast<double>(right + 1);
    }
  }

  out.left = left;
  out.right = right;
  out.captured_mass = mass;
  out.weights.assign(weights.begin(), weights.end());
  // Normalize: compensates the truncated tails so downstream sums are exact
  // convex combinations.
  for (double& w : out.weights) w /= mass;
  return out;
}

}  // namespace autosec::ctmc
