#include "ctmc/poisson.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "util/metrics.hpp"

namespace autosec::ctmc {

double PoissonWeights::cdf(size_t k) const {
  if (k < left) return 0.0;
  const size_t top = std::min(k, right);
  double acc = 0.0;
  for (size_t j = left; j <= top; ++j) acc += weights[j - left];
  return acc;
}

PoissonWeights poisson_weights(double lambda, double epsilon) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("poisson_weights: lambda < 0");
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    throw std::invalid_argument("poisson_weights: epsilon out of (0,1)");
  }

  PoissonWeights out;
  if (lambda == 0.0) {
    out.left = out.right = 0;
    out.weights = {1.0};
    out.captured_mass = 1.0;
    return out;
  }

  // pmf at the mode, via lgamma to stay finite for large lambda.
  const auto mode = static_cast<size_t>(std::floor(lambda));
  const double log_pmf_mode =
      -lambda + static_cast<double>(mode) * std::log(lambda) -
      std::lgamma(static_cast<double>(mode) + 1.0);
  const double pmf_mode = std::exp(log_pmf_mode);

  // Expand greedily from the mode, always adding the larger of the two
  // frontier weights, until mass >= 1 - epsilon. Kahan summation keeps the
  // captured mass accurate over the ~O(sqrt(lambda)) terms; the relative
  // frontier cutoff stops the expansion once further terms can no longer
  // change the sum (they would otherwise drag the window out to the far
  // tails for very large lambda).
  std::deque<double> weights = {pmf_mode};
  size_t left = mode;
  size_t right = mode;
  double mass = pmf_mode;
  double compensation = 0.0;
  auto accumulate = [&](double term) {
    const double y = term - compensation;
    const double t = mass + y;
    compensation = (t - mass) - y;
    mass = t;
  };
  double next_left = left > 0 ? pmf_mode * static_cast<double>(left) / lambda : 0.0;
  double next_right = pmf_mode * lambda / static_cast<double>(right + 1);

  while (mass < 1.0 - epsilon) {
    const double cutoff = mass * 1e-18;
    const bool left_dead = next_left <= cutoff;
    const bool right_dead = next_right <= cutoff;
    if (left_dead && right_dead) break;  // numeric exhaustion
    if (!left_dead && (right_dead || next_left >= next_right)) {
      weights.push_front(next_left);
      accumulate(next_left);
      --left;
      next_left = left > 0 ? weights.front() * static_cast<double>(left) / lambda : 0.0;
    } else {
      weights.push_back(next_right);
      accumulate(next_right);
      ++right;
      next_right = weights.back() * lambda / static_cast<double>(right + 1);
    }
  }

  out.left = left;
  out.right = right;
  out.captured_mass = mass;
  out.weights.assign(weights.begin(), weights.end());
  // Normalize: compensates the truncated tails so downstream sums are exact
  // convex combinations.
  for (double& w : out.weights) w /= mass;
  return out;
}

namespace {

struct PoissonKey {
  double lambda;
  double epsilon;
  bool operator==(const PoissonKey&) const = default;
};

struct PoissonKeyHash {
  size_t operator()(const PoissonKey& key) const {
    // Exact bit-pattern keying: equal doubles hash equal, and the engine only
    // ever reuses horizons it constructed from identical inputs.
    const size_t a = std::hash<double>{}(key.lambda);
    const size_t b = std::hash<double>{}(key.epsilon);
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  }
};

// A weight vector for qt ~ 1e6 holds ~O(sqrt(qt)) doubles; 1024 entries keep
// the cache bounded well under typical working-set sizes.
constexpr size_t kDefaultCacheCapacity = 1024;

std::mutex g_poisson_mutex;
std::unordered_map<PoissonKey, std::shared_ptr<const PoissonWeights>, PoissonKeyHash>
    g_poisson_cache;
// Keys in insertion order, oldest first; eviction drops the front half. Kept
// exactly in sync with the map (every map erase/clear updates it too).
std::deque<PoissonKey> g_poisson_order;
size_t g_poisson_capacity = kDefaultCacheCapacity;
PoissonCacheStats g_poisson_stats;

/// Drop the oldest-inserted half of the cache (requires the lock). A
/// wholesale clear would thrash parameter sweeps that straddle the capacity:
/// every key computed before the wipe misses again on the next sweep pass,
/// while evicting only the stale half keeps the recent working set warm.
void evict_oldest_half_locked() {
  const size_t evict = std::max<size_t>(g_poisson_order.size() / 2, 1);
  for (size_t i = 0; i < evict && !g_poisson_order.empty(); ++i) {
    g_poisson_cache.erase(g_poisson_order.front());
    g_poisson_order.pop_front();
  }
  g_poisson_stats.evictions += evict;
  util::metrics::registry().add("poisson.cache_evictions", evict);
}

}  // namespace

std::shared_ptr<const PoissonWeights> poisson_weights_cached(double lambda,
                                                             double epsilon) {
  const PoissonKey key{lambda, epsilon};
  {
    std::lock_guard<std::mutex> lock(g_poisson_mutex);
    const auto it = g_poisson_cache.find(key);
    if (it != g_poisson_cache.end()) {
      ++g_poisson_stats.hits;
      g_poisson_stats.entries = g_poisson_cache.size();
      util::metrics::registry().add("poisson.cache_hits");
      return it->second;
    }
  }
  // Compute outside the lock (concurrent misses for the same key may race to
  // insert; both compute identical weights, so either result is correct).
  auto weights = std::make_shared<const PoissonWeights>(poisson_weights(lambda, epsilon));
  std::lock_guard<std::mutex> lock(g_poisson_mutex);
  ++g_poisson_stats.misses;
  util::metrics::registry().add("poisson.cache_misses");
  if (g_poisson_cache.size() >= g_poisson_capacity) evict_oldest_half_locked();
  const auto [it, inserted] = g_poisson_cache.emplace(key, std::move(weights));
  if (inserted) g_poisson_order.push_back(key);
  g_poisson_stats.entries = g_poisson_cache.size();
  return it->second;
}

size_t set_poisson_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(g_poisson_mutex);
  const size_t previous = g_poisson_capacity;
  g_poisson_capacity = std::max<size_t>(capacity, 2);
  while (g_poisson_cache.size() > g_poisson_capacity) evict_oldest_half_locked();
  g_poisson_stats.entries = g_poisson_cache.size();
  return previous;
}

PoissonCacheStats poisson_cache_stats() {
  std::lock_guard<std::mutex> lock(g_poisson_mutex);
  PoissonCacheStats stats = g_poisson_stats;
  stats.entries = g_poisson_cache.size();
  return stats;
}

void reset_poisson_cache() {
  std::lock_guard<std::mutex> lock(g_poisson_mutex);
  g_poisson_cache.clear();
  g_poisson_order.clear();
  g_poisson_stats = {};
}

}  // namespace autosec::ctmc
