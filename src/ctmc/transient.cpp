#include "ctmc/transient.hpp"

#include <cmath>
#include <new>
#include <stdexcept>
#include <string>

#include "ctmc/poisson.hpp"
#include "linalg/vector_ops.hpp"
#include "util/cancel.hpp"
#include "util/failure.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace autosec::ctmc {

void check_distribution(size_t state_count, const std::vector<double>& initial,
                        const char* what) {
  const std::string prefix(what);
  if (initial.size() != state_count) {
    throw std::invalid_argument(prefix + ": initial distribution size mismatch");
  }
  double total = 0.0;
  for (double p : initial) {
    if (p < 0.0) throw std::invalid_argument(prefix + ": negative probability");
    total += p;
  }
  // Subdistributions (sum < 1) are allowed: multi-phase CSL algorithms
  // (interval-bounded until) restrict distributions between phases.
  if (total > 1.0 + 1e-9) {
    throw std::invalid_argument(prefix + ": initial distribution sums above 1");
  }
}

Uniformized uniformize(const Ctmc& chain, const TransientOptions& options) {
  util::metrics::registry().add("ctmc.uniformizations");
  if (util::fault::triggered("uniformize.alloc")) throw std::bad_alloc();
  Uniformized out;
  out.state_count = chain.state_count();
  out.q = options.uniformization_rate > 0.0 ? options.uniformization_rate
                                            : chain.default_uniformization_rate();
  out.transposed = chain.uniformized(out.q).transposed();
  if (options.budget) {
    // CSR footprint of Pᵀ: one double + one uint32 per stored entry, plus the
    // row-pointer array. Charged after the build — the typed failure still
    // fires before the matrix is handed to a solve.
    options.budget->charge_bytes(
        out.transposed.nonzeros() * (sizeof(double) + sizeof(uint32_t)) +
            (out.transposed.rows() + 1) * sizeof(uint32_t),
        "uniformize");
  }
  return out;
}

std::vector<double> transient_distribution(const Uniformized& uniformized,
                                           const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  check_distribution(uniformized.state_count, initial);
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (t == 0.0) return initial;

  const auto weights = poisson_weights_cached(uniformized.q * t, options.epsilon);
  {
    util::metrics::Registry& metrics = util::metrics::registry();
    if (metrics.enabled()) {
      metrics.add("ctmc.transient_solves");
      metrics.add("ctmc.matrix_vector_products", weights->right);
      metrics.gauge("poisson.last_qt", uniformized.q * t);
      metrics.gauge("poisson.last_left", static_cast<double>(weights->left));
      metrics.gauge("poisson.last_right", static_cast<double>(weights->right));
    }
  }

  const size_t n = uniformized.state_count;
  std::vector<double> current = initial;
  std::vector<double> next(n, 0.0);
  std::vector<double> result(n, 0.0);

  for (size_t k = 0; k <= weights->right; ++k) {
    if (options.cancelled && options.cancelled()) {
      throw util::Cancelled("transient");
    }
    if (k >= weights->left) {
      linalg::axpy(weights->weight(k), current, result);
    }
    if (k < weights->right) {
      uniformized.step(current, next);
      current.swap(next);
    }
  }
  // Health guard: a NaN/Inf anywhere in the result means an upstream rate or
  // weight was poisoned — surface a typed failure, never a silent wrong answer.
  double checksum = 0.0;
  for (const double p : result) checksum += p;
  if (!std::isfinite(checksum)) {
    throw util::EngineFailure(
        util::FailureCode::kNumericalError, "transient",
        "transient: non-finite probability in the result distribution");
  }
  return result;
}

std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  check_distribution(chain.state_count(), initial);
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (t == 0.0 || chain.max_exit_rate() == 0.0) return initial;
  return transient_distribution(uniformize(chain, options), initial, t, options);
}

double transient_probability(const Ctmc& chain, const std::vector<double>& initial,
                             const std::vector<bool>& target, double t,
                             const TransientOptions& options) {
  if (target.size() != chain.state_count()) {
    throw std::invalid_argument("transient_probability: target mask size mismatch");
  }
  const std::vector<double> dist = transient_distribution(chain, initial, t, options);
  double acc = 0.0;
  for (size_t i = 0; i < dist.size(); ++i) {
    if (target[i]) acc += dist[i];
  }
  return acc;
}

double bounded_reachability(const Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<bool>& allowed,
                            const std::vector<bool>& target, double t,
                            const TransientOptions& options) {
  const size_t n = chain.state_count();
  if (allowed.size() != n || target.size() != n) {
    throw std::invalid_argument("bounded_reachability: mask size mismatch");
  }
  // Both target states (success: once reached, the path formula holds) and
  // forbidden states (failure: the until is violated) become absorbing.
  std::vector<bool> absorbing(n, false);
  for (size_t i = 0; i < n; ++i) absorbing[i] = target[i] || !allowed[i];
  const Ctmc modified = chain.with_absorbing(absorbing);
  return transient_probability(modified, initial, target, t, options);
}

}  // namespace autosec::ctmc
