#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <stdexcept>
#include <string>

#include "ctmc/poisson.hpp"
#include "linalg/vector_ops.hpp"
#include "util/cancel.hpp"
#include "util/failure.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace autosec::ctmc {

void check_distribution(size_t state_count, const std::vector<double>& initial,
                        const char* what) {
  const std::string prefix(what);
  if (initial.size() != state_count) {
    throw std::invalid_argument(prefix + ": initial distribution size mismatch");
  }
  double total = 0.0;
  for (double p : initial) {
    // `p < 0.0` is false for NaN, and NaN/Inf would sail through the sum
    // guard (NaN compares false, the sum saturates) only to poison a solve
    // later — reject non-finite mass up front as a typed numerical failure.
    if (!std::isfinite(p)) {
      throw util::EngineFailure(
          util::FailureCode::kNumericalError, what,
          prefix + ": non-finite probability in initial distribution");
    }
    if (p < 0.0) throw std::invalid_argument(prefix + ": negative probability");
    total += p;
  }
  // Subdistributions (sum < 1) are allowed: multi-phase CSL algorithms
  // (interval-bounded until) restrict distributions between phases.
  if (total > 1.0 + 1e-9) {
    throw std::invalid_argument(prefix + ": initial distribution sums above 1");
  }
}

namespace {

/// CSR heap footprint: one double + one uint32 per entry plus row pointers.
size_t csr_bytes(size_t nonzeros, size_t rows) {
  return nonzeros * (sizeof(double) + sizeof(uint32_t)) +
         (rows + 1) * sizeof(uint32_t);
}

}  // namespace

Uniformized uniformize(const Ctmc& chain, const TransientOptions& options) {
  util::metrics::registry().add("ctmc.uniformizations");
  Uniformized out;
  out.state_count = chain.state_count();
  out.q = options.uniformization_rate > 0.0 ? options.uniformization_rate
                                            : chain.default_uniformization_rate();

  // Charge the build's transient peak *before* allocating: P and Pᵀ are live
  // simultaneously (nnz(P) ≤ nnz(R) + n for the compensating self-loops),
  // plus the optional SELL-C-σ packing. A tripped ceiling therefore unwinds
  // as a typed memory_budget_exceeded before the allocations happen, not
  // after the matrices already sit in memory.
  const size_t n = out.state_count;
  const size_t nnz_bound = chain.rates().nonzeros() + n;
  size_t peak_estimate = 2 * csr_bytes(nnz_bound, n);
  if (options.layout != linalg::MatrixLayout::kCsr) {
    peak_estimate += csr_bytes(nnz_bound, n) + 2 * n * sizeof(uint32_t);
  }
  if (options.budget) options.budget->charge_bytes(peak_estimate, "uniformize");
  if (util::fault::triggered("uniformize.alloc")) throw std::bad_alloc();

  if (linalg::resolve_reorder(options.reorder, n) == linalg::StateReorder::kRcm) {
    const linalg::CsrMatrix P = chain.uniformized(out.q);
    out.permutation = linalg::rcm_permutation(P);
    out.inverse = linalg::invert_permutation(out.permutation);
    out.transposed = linalg::permuted_transposed(P, out.inverse);
    util::metrics::registry().add("uniformize.rcm_reorders");
  } else {
    // Fused build: Pᵀ straight from the rate matrix, skipping P entirely.
    out.transposed = chain.uniformized_transposed(out.q);
  }
  if (linalg::resolve_layout(options.layout, out.transposed) ==
      linalg::MatrixLayout::kBlocked) {
    out.blocked.emplace(out.transposed);
    util::metrics::registry().add("uniformize.blocked_layouts");
  }

  if (options.budget) {
    // Settle the charge down to what the stage actually keeps: Pᵀ, the
    // optional packed copy, and the permutation vectors. P itself is gone.
    size_t kept = csr_bytes(out.transposed.nonzeros(), out.transposed.rows()) +
                  (out.blocked ? out.blocked->bytes() : 0) +
                  2 * out.permutation.size() * sizeof(uint32_t);
    if (kept < peak_estimate) options.budget->release_bytes(peak_estimate - kept);
  }
  return out;
}

std::vector<double> transient_distribution(const Uniformized& uniformized,
                                           const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  check_distribution(uniformized.state_count, initial);
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (t == 0.0) return initial;

  const auto weights = poisson_weights_cached(uniformized.q * t, options.epsilon);
  {
    util::metrics::Registry& metrics = util::metrics::registry();
    if (metrics.enabled()) {
      metrics.add("ctmc.transient_solves");
      metrics.gauge("poisson.last_qt", uniformized.q * t);
      metrics.gauge("poisson.last_left", static_cast<double>(weights->left));
      metrics.gauge("poisson.last_right", static_cast<double>(weights->right));
    }
  }

  const size_t n = uniformized.state_count;
  std::vector<double> current = uniformized.to_solver_order(initial);
  std::vector<double> next(n, 0.0);
  std::vector<double> result(n, 0.0);

  size_t steps = 0;
  for (size_t k = 0; k <= weights->right; ++k) {
    if (options.cancelled && options.cancelled()) {
      throw util::Cancelled("transient");
    }
    if (k >= weights->left) {
      linalg::axpy(weights->weight(k), current, result);
    }
    if (k < weights->right) {
      uniformized.step(current, next);
      ++steps;
      // Steady-state detection (every 4th phase: the delta pass costs an
      // O(n) scan against the O(nnz) product). P is stochastic, so step
      // deltas contract in L1: ||π_j − π_{k+1}||₁ ≤ (j−k−1)·δ for every
      // later phase j. When δ · (remaining phases) ≤ ε the remaining
      // contributions collapse — within ε per entry — into the total
      // remaining Poisson mass applied to the current iterate.
      if (options.steady_state_detection && (k & 3) == 3 &&
          k + 1 < weights->right) {
        double delta = 0.0;
        for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - current[i]);
        const double remaining = static_cast<double>(weights->right - (k + 1));
        if (delta * remaining <= options.steady_state_epsilon) {
          double tail_mass = 0.0;
          for (size_t j = std::max(k + 1, weights->left); j <= weights->right; ++j) {
            tail_mass += weights->weight(j);
          }
          linalg::axpy(tail_mass, next, result);
          util::metrics::Registry& metrics = util::metrics::registry();
          if (metrics.enabled()) {
            metrics.add("solve.steady_state_truncations");
            metrics.add("solve.steady_state_steps_saved", weights->right - (k + 1));
          }
          break;
        }
      }
      current.swap(next);
    }
  }
  util::metrics::registry().add("ctmc.matrix_vector_products", steps);
  // Health guard: a NaN/Inf anywhere in the result means an upstream rate or
  // weight was poisoned — surface a typed failure, never a silent wrong answer.
  double checksum = 0.0;
  for (const double p : result) checksum += p;
  if (!std::isfinite(checksum)) {
    throw util::EngineFailure(
        util::FailureCode::kNumericalError, "transient",
        "transient: non-finite probability in the result distribution");
  }
  return uniformized.to_original_order(result);
}

std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double t, const TransientOptions& options) {
  check_distribution(chain.state_count(), initial);
  if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (t == 0.0 || chain.max_exit_rate() == 0.0) return initial;
  return transient_distribution(uniformize(chain, options), initial, t, options);
}

double transient_probability(const Ctmc& chain, const std::vector<double>& initial,
                             const std::vector<bool>& target, double t,
                             const TransientOptions& options) {
  if (target.size() != chain.state_count()) {
    throw std::invalid_argument("transient_probability: target mask size mismatch");
  }
  const std::vector<double> dist = transient_distribution(chain, initial, t, options);
  double acc = 0.0;
  for (size_t i = 0; i < dist.size(); ++i) {
    if (target[i]) acc += dist[i];
  }
  return acc;
}

double bounded_reachability(const Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<bool>& allowed,
                            const std::vector<bool>& target, double t,
                            const TransientOptions& options) {
  const size_t n = chain.state_count();
  if (allowed.size() != n || target.size() != n) {
    throw std::invalid_argument("bounded_reachability: mask size mismatch");
  }
  // Both target states (success: once reached, the path formula holds) and
  // forbidden states (failure: the until is violated) become absorbing.
  std::vector<bool> absorbing(n, false);
  for (size_t i = 0; i < n; ++i) absorbing[i] = target[i] || !allowed[i];
  const Ctmc modified = chain.with_absorbing(absorbing);
  return transient_probability(modified, initial, target, t, options);
}

}  // namespace autosec::ctmc
