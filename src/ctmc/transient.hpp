// Transient analysis of CTMCs via uniformization:
//   π(t) = Σ_k Pois(qt, k) · π(0) Pᵏ   with P = I + Q/q.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "util/budget.hpp"

namespace autosec::ctmc {

struct TransientOptions {
  double epsilon = 1e-12;  ///< truncation error bound for the Poisson weights
  /// Uniformization rate override; <= 0 means the chain's default rate.
  double uniformization_rate = 0.0;
  /// Cooperative cancellation hook, polled between uniformization steps.
  /// When it returns true the solve unwinds with util::Cancelled.
  std::function<bool()> cancelled;
  /// Optional per-request resource budget; uniformize() charges the
  /// transposed-matrix bytes against it (and unwinds with a typed
  /// memory_budget_exceeded failure when the ceiling is hit).
  std::shared_ptr<util::ResourceBudget> budget;
};

/// A prebuilt uniformization stage: the rate q and the *transposed*
/// uniformized DTMC Pᵀ. The transposed layout turns the hot vector-matrix
/// product π·P into the gather-form Pᵀ·π, which sums each output entry in the
/// same order as the serial scatter kernel but runs row-parallel on the
/// engine thread pool — results are bit-identical at any thread count.
/// Building this once per chain (EngineSession caches it) amortizes the
/// transposition across every transient query at any horizon.
struct Uniformized {
  double q = 0.0;
  size_t state_count = 0;
  linalg::CsrMatrix transposed;  ///< Pᵀ with P = I + Q/q

  /// next = current · P, computed as Pᵀ · current.
  void step(const std::vector<double>& current, std::vector<double>& next) const {
    transposed.right_multiply(current, next);
  }
};

/// Build the uniformization stage for a chain. Empty (max exit rate 0) chains
/// yield a valid identity stage.
Uniformized uniformize(const Ctmc& chain, const TransientOptions& options = {});

/// Validate an initial (sub)distribution: size match, no negative entries,
/// total mass <= 1 (+1e-9 slack; subdistributions are legal — interval-bounded
/// until restricts mass between phases). Throws std::invalid_argument with
/// `what` as the message prefix. Shared by the transient and steady-state
/// entry points so both reject malformed input identically.
void check_distribution(size_t state_count, const std::vector<double>& initial,
                        const char* what = "transient");

/// Distribution over states at time t, starting from `initial` (a probability
/// distribution over states). t must be >= 0; t == 0 returns `initial`.
std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double t,
                                           const TransientOptions& options = {});

/// Same, on a prebuilt uniformization stage (repeated horizons reuse it).
std::vector<double> transient_distribution(const Uniformized& uniformized,
                                           const std::vector<double>& initial,
                                           double t,
                                           const TransientOptions& options = {});

/// Probability of being in a `target` state at time exactly t.
double transient_probability(const Ctmc& chain, const std::vector<double>& initial,
                             const std::vector<bool>& target, double t,
                             const TransientOptions& options = {});

/// Time-bounded reachability Pr[ reach `target` within t, staying in `allowed`
/// until then ] — the CSL measure of Φ U^{<=t} Ψ with Φ = allowed, Ψ = target.
/// Implemented by making target states absorbing-success and states outside
/// `allowed` ∪ `target` absorbing-failure, then running transient analysis.
double bounded_reachability(const Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<bool>& allowed,
                            const std::vector<bool>& target, double t,
                            const TransientOptions& options = {});

}  // namespace autosec::ctmc
