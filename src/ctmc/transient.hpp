// Transient analysis of CTMCs via uniformization:
//   π(t) = Σ_k Pois(qt, k) · π(0) Pᵏ   with P = I + Q/q.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sell_matrix.hpp"
#include "util/budget.hpp"

namespace autosec::ctmc {

struct TransientOptions {
  double epsilon = 1e-12;  ///< truncation error bound for the Poisson weights
  /// Uniformization rate override; <= 0 means the chain's default rate.
  double uniformization_rate = 0.0;
  /// Storage layout of the uniformized matrix (kAuto resolves per matrix;
  /// blocked SELL-C-σ is bit-identical to CSR, so this is purely a
  /// performance knob).
  linalg::MatrixLayout layout = linalg::MatrixLayout::kAuto;
  /// Bandwidth-reducing state reordering applied at uniformize time. RCM
  /// changes per-row summation order, so results agree with the natural
  /// order within ~1e-12, not bitwise; kAuto only turns it on for matrices
  /// large enough for bandwidth to matter.
  linalg::StateReorder reorder = linalg::StateReorder::kAuto;
  /// Steady-state detection: between Poisson phases the iterate's L1 step
  /// delta bounds every remaining phase's distance from the current iterate
  /// (P is stochastic, so ||πP − π'P||₁ ≤ ||π − π'||₁). Once that rigorous
  /// bound on the truncation error drops below steady_state_epsilon, the
  /// remaining phases collapse into one closed-form tail — long horizons on
  /// fast-mixing chains truncate to their mixing time. Surfaced in metrics
  /// as solve.steady_state_truncations.
  bool steady_state_detection = true;
  /// Per-entry error ceiling of a detected truncation; keep well below the
  /// 1e-8 cross-engine agreement tolerance.
  double steady_state_epsilon = 1e-9;
  /// Cooperative cancellation hook, polled between uniformization steps.
  /// When it returns true the solve unwinds with util::Cancelled.
  std::function<bool()> cancelled;
  /// Optional per-request resource budget; uniformize() charges the
  /// transient build peak (P and Pᵀ live simultaneously) up front — the
  /// typed memory_budget_exceeded failure fires before the allocations —
  /// then releases down to the bytes the stage actually keeps.
  std::shared_ptr<util::ResourceBudget> budget;
};

/// A prebuilt uniformization stage: the rate q and the *transposed*
/// uniformized DTMC Pᵀ. The transposed layout turns the hot vector-matrix
/// product π·P into the gather-form Pᵀ·π, which sums each output entry in the
/// same order as the serial scatter kernel but runs row-parallel on the
/// engine thread pool — results are bit-identical at any thread count.
/// Building this once per chain (EngineSession caches it) amortizes the
/// transposition (and the optional SELL-C-σ packing / RCM relabeling) across
/// every transient query at any horizon.
struct Uniformized {
  double q = 0.0;
  size_t state_count = 0;
  linalg::CsrMatrix transposed;  ///< Pᵀ with P = I + Q/q, in solver order
  /// SELL-C-σ packing of `transposed` when the layout resolved to blocked;
  /// bit-identical products, so step() may use either form.
  std::optional<linalg::SellMatrix> blocked;
  /// RCM relabeling when the reorder resolved to kRcm: solver index i holds
  /// original state permutation[i]; empty means identity. The transient
  /// entry points permute inputs in and results back out, so callers always
  /// see original state indices.
  std::vector<uint32_t> permutation;
  std::vector<uint32_t> inverse;  ///< original -> solver index

  bool permuted() const { return !permutation.empty(); }

  /// next = current · P, computed as Pᵀ · current (in solver order).
  void step(const std::vector<double>& current, std::vector<double>& next) const {
    if (blocked) {
      blocked->right_multiply(current, next);
    } else {
      transposed.right_multiply(current, next);
    }
  }

  /// Gather `v` (original order) into solver order; identity when unpermuted.
  std::vector<double> to_solver_order(const std::vector<double>& v) const {
    return permuted() ? linalg::permute_vector(v, permutation) : v;
  }

  /// Scatter a solver-order vector back to original state indices.
  std::vector<double> to_original_order(const std::vector<double>& v) const {
    return permuted() ? linalg::permute_vector(v, inverse) : v;
  }
};

/// Build the uniformization stage for a chain. Empty (max exit rate 0) chains
/// yield a valid identity stage.
Uniformized uniformize(const Ctmc& chain, const TransientOptions& options = {});

/// Validate an initial (sub)distribution: size match, finite entries (NaN/Inf
/// unwind as a typed kNumericalError EngineFailure — `p < 0` is false for NaN,
/// so non-finiteness is checked explicitly), no negative entries, total mass
/// <= 1 (+1e-9 slack; subdistributions are legal — interval-bounded until
/// restricts mass between phases). Throws std::invalid_argument with `what`
/// as the message prefix for the shape/sign/mass defects. Shared by the
/// transient and steady-state entry points so both reject malformed input
/// identically.
void check_distribution(size_t state_count, const std::vector<double>& initial,
                        const char* what = "transient");

/// Distribution over states at time t, starting from `initial` (a probability
/// distribution over states). t must be >= 0; t == 0 returns `initial`.
std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& initial,
                                           double t,
                                           const TransientOptions& options = {});

/// Same, on a prebuilt uniformization stage (repeated horizons reuse it).
std::vector<double> transient_distribution(const Uniformized& uniformized,
                                           const std::vector<double>& initial,
                                           double t,
                                           const TransientOptions& options = {});

/// Probability of being in a `target` state at time exactly t.
double transient_probability(const Ctmc& chain, const std::vector<double>& initial,
                             const std::vector<bool>& target, double t,
                             const TransientOptions& options = {});

/// Time-bounded reachability Pr[ reach `target` within t, staying in `allowed`
/// until then ] — the CSL measure of Φ U^{<=t} Ψ with Φ = allowed, Ψ = target.
/// Implemented by making target states absorbing-success and states outside
/// `allowed` ∪ `target` absorbing-failure, then running transient analysis.
double bounded_reachability(const Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<bool>& allowed,
                            const std::vector<bool>& target, double t,
                            const TransientOptions& options = {});

}  // namespace autosec::ctmc
