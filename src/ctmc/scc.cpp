#include "ctmc/scc.hpp"

#include <algorithm>
#include <stdexcept>

namespace autosec::ctmc {

std::vector<uint32_t> SccDecomposition::bottom_components() const {
  std::vector<uint32_t> out;
  for (uint32_t c = 0; c < component_count; ++c) {
    if (is_bottom[c]) out.push_back(c);
  }
  return out;
}

SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("scc: adjacency must be square");
  }
  const size_t n = adjacency.rows();
  constexpr uint32_t kUnvisited = UINT32_MAX;

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;  // Tarjan's component stack
  std::vector<uint32_t> component_of(n, kUnvisited);
  uint32_t next_index = 0;
  uint32_t component_count = 0;

  // Explicit DFS frame: node + position within its adjacency row.
  struct Frame {
    uint32_t node;
    size_t edge;
  };
  std::vector<Frame> dfs;

  auto edge_target = [&](uint32_t node, size_t k) -> int64_t {
    const auto cols = adjacency.row_columns(node);
    const auto vals = adjacency.row_values(node);
    for (size_t i = k; i < cols.size(); ++i) {
      if (vals[i] != 0.0 && cols[i] != node) return static_cast<int64_t>(i);
    }
    return -1;
  };

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const int64_t next_edge = edge_target(frame.node, frame.edge);
      if (next_edge >= 0) {
        const uint32_t child = adjacency.row_columns(frame.node)[next_edge];
        frame.edge = static_cast<size_t>(next_edge) + 1;
        if (index[child] == kUnvisited) {
          index[child] = lowlink[child] = next_index++;
          stack.push_back(child);
          on_stack[child] = true;
          dfs.push_back({child, 0});
        } else if (on_stack[child]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[child]);
        }
      } else {
        const uint32_t node = frame.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] = std::min(lowlink[dfs.back().node], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          // node is the root of a component: pop it off the stack.
          while (true) {
            const uint32_t member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            component_of[member] = component_count;
            if (member == node) break;
          }
          ++component_count;
        }
      }
    }
  }

  SccDecomposition out;
  out.component_of = std::move(component_of);
  out.component_count = component_count;
  out.members.resize(component_count);
  for (uint32_t s = 0; s < n; ++s) out.members[out.component_of[s]].push_back(s);

  out.is_bottom.assign(component_count, true);
  for (uint32_t s = 0; s < n; ++s) {
    const auto cols = adjacency.row_columns(s);
    const auto vals = adjacency.row_values(s);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (vals[k] == 0.0 || cols[k] == s) continue;
      if (out.component_of[cols[k]] != out.component_of[s]) {
        out.is_bottom[out.component_of[s]] = false;
        break;
      }
    }
  }
  return out;
}

ReachabilityClassification classify_reachability(const linalg::CsrMatrix& adjacency,
                                                 const std::vector<bool>& target) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("classify_reachability: adjacency must be square");
  }
  const size_t n = adjacency.rows();
  if (target.size() != n) {
    throw std::invalid_argument("classify_reachability: target size mismatch");
  }
  // Predecessor lists over the target-absorbed graph (outgoing edges of
  // target states removed; self-loops and zero weights ignored).
  std::vector<std::vector<uint32_t>> predecessors(n);
  for (uint32_t row = 0; row < n; ++row) {
    if (target[row]) continue;
    const auto cols = adjacency.row_columns(row);
    const auto vals = adjacency.row_values(row);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (vals[k] != 0.0 && cols[k] != row) predecessors[cols[k]].push_back(row);
    }
  }
  auto backward_closure = [&](std::vector<bool>& reached) {
    std::vector<uint32_t> stack;
    for (uint32_t s = 0; s < n; ++s) {
      if (reached[s]) stack.push_back(s);
    }
    while (!stack.empty()) {
      const uint32_t state = stack.back();
      stack.pop_back();
      for (const uint32_t pred : predecessors[state]) {
        if (!reached[pred]) {
          reached[pred] = true;
          stack.push_back(pred);
        }
      }
    }
  };
  // Prob>0: states that can reach the target at all.
  std::vector<bool> can_reach = target;
  backward_closure(can_reach);
  // Prob<1: states that can reach a Prob=0 state. The complement is Prob1.
  std::vector<bool> below_one(n);
  for (size_t i = 0; i < n; ++i) below_one[i] = !can_reach[i];
  backward_closure(below_one);
  ReachabilityClassification out;
  out.possible = std::move(can_reach);
  out.certain.resize(n);
  for (size_t i = 0; i < n; ++i) out.certain[i] = !below_one[i];
  return out;
}

std::vector<bool> almost_sure_reachability(const linalg::CsrMatrix& adjacency,
                                           const std::vector<bool>& target) {
  return classify_reachability(adjacency, target).certain;
}

}  // namespace autosec::ctmc
