#include "ctmc/rewards.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ctmc/poisson.hpp"
#include "linalg/vector_ops.hpp"
#include "util/metrics.hpp"

namespace autosec::ctmc {

double expected_cumulative_reward(const Uniformized& uniformized,
                                  const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options) {
  const size_t n = uniformized.state_count;
  if (initial.size() != n || state_rewards.size() != n) {
    throw std::invalid_argument("cumulative_reward: size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("cumulative_reward: negative time");
  if (t == 0.0) return 0.0;

  const auto weights = poisson_weights_cached(uniformized.q * t, options.epsilon);

  // E = (1/q) Σ_{k=0..R} (1 − CDF(k)) (π₀ Pᵏ)·r.  Since the normalized
  // weights sum to 1 over [L,R], the factor (1 − CDF(k)) is 1 for k < L and 0
  // for k ≥ R; running the cumulative sum incrementally avoids the quadratic
  // cdf() scan.
  std::vector<double> current = uniformized.to_solver_order(initial);
  const std::vector<double> rewards = uniformized.to_solver_order(state_rewards);
  double reward_ceiling = 0.0;
  for (const double r : rewards) reward_ceiling = std::max(reward_ceiling, std::abs(r));
  std::vector<double> next(n, 0.0);
  double cdf = 0.0;
  double acc = 0.0;
  size_t steps = 0;
  for (size_t k = 0; k <= weights->right; ++k) {
    cdf += weights->weight(k);
    const double factor = 1.0 - cdf;
    if (factor > 0.0) acc += factor * linalg::dot(current, rewards);
    if (k < weights->right) {
      uniformized.step(current, next);
      ++steps;
      // Steady-state detection, with the quadratic tail bound this sum
      // needs: the collapsed-tail error is Σ_j (1−CDF(j))·(j−k−1)·δ·‖r‖∞/q
      // ≤ δ·(remaining)²·‖r‖∞/q (L1-contracting step deltas, as in
      // transient_distribution). The tail itself has the closed form
      // Σ_j (1−CDF(j)) · π_{k+1}·r.
      if (options.steady_state_detection && (k & 3) == 3 &&
          k + 1 < weights->right) {
        double delta = 0.0;
        for (size_t i = 0; i < n; ++i) delta += std::abs(next[i] - current[i]);
        const double remaining = static_cast<double>(weights->right - (k + 1));
        if (delta * remaining * remaining * std::max(1.0, reward_ceiling) /
                uniformized.q <=
            options.steady_state_epsilon) {
          double tail_factor = 0.0;
          double tail_cdf = cdf;
          for (size_t j = k + 1; j <= weights->right; ++j) {
            tail_cdf += weights->weight(j);
            const double f = 1.0 - tail_cdf;
            if (f > 0.0) tail_factor += f;
          }
          acc += tail_factor * linalg::dot(next, rewards);
          util::metrics::Registry& metrics = util::metrics::registry();
          if (metrics.enabled()) {
            metrics.add("solve.steady_state_truncations");
            metrics.add("solve.steady_state_steps_saved", weights->right - (k + 1));
          }
          break;
        }
      }
      current.swap(next);
    }
  }
  util::metrics::registry().add("ctmc.matrix_vector_products", steps);
  return acc / uniformized.q;
}

double expected_cumulative_reward(const Ctmc& chain, const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options) {
  const size_t n = chain.state_count();
  if (initial.size() != n || state_rewards.size() != n) {
    throw std::invalid_argument("cumulative_reward: size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("cumulative_reward: negative time");
  if (t == 0.0) return 0.0;
  if (chain.max_exit_rate() == 0.0) {
    // No movement: the chain sits in the initial distribution for all of [0,t].
    return t * linalg::dot(initial, state_rewards);
  }
  return expected_cumulative_reward(uniformize(chain, options), initial,
                                    state_rewards, t, options);
}

double expected_instantaneous_reward(const Ctmc& chain,
                                     const std::vector<double>& initial,
                                     const std::vector<double>& state_rewards, double t,
                                     const TransientOptions& options) {
  if (state_rewards.size() != chain.state_count()) {
    throw std::invalid_argument("instantaneous_reward: size mismatch");
  }
  const std::vector<double> dist = transient_distribution(chain, initial, t, options);
  return linalg::dot(dist, state_rewards);
}

double steady_state_reward(const Ctmc& chain, const std::vector<double>& initial,
                           const std::vector<double>& state_rewards,
                           const SteadyStateOptions& options) {
  if (state_rewards.size() != chain.state_count()) {
    throw std::invalid_argument("steady_state_reward: size mismatch");
  }
  const SteadyStateResult result = steady_state(chain, initial, options);
  return linalg::dot(result.distribution, state_rewards);
}

double expected_time_fraction(const Ctmc& chain, const std::vector<double>& initial,
                              const std::vector<bool>& mask, double t,
                              const TransientOptions& options) {
  if (mask.size() != chain.state_count()) {
    throw std::invalid_argument("expected_time_fraction: mask size mismatch");
  }
  if (!(t > 0.0)) throw std::invalid_argument("expected_time_fraction: t must be > 0");
  std::vector<double> rewards(mask.size(), 0.0);
  for (size_t i = 0; i < mask.size(); ++i) rewards[i] = mask[i] ? 1.0 : 0.0;
  return expected_cumulative_reward(chain, initial, rewards, t, options) / t;
}

}  // namespace autosec::ctmc
