#include "ctmc/rewards.hpp"

#include <stdexcept>

#include "ctmc/poisson.hpp"
#include "linalg/vector_ops.hpp"

namespace autosec::ctmc {

double expected_cumulative_reward(const Uniformized& uniformized,
                                  const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options) {
  const size_t n = uniformized.state_count;
  if (initial.size() != n || state_rewards.size() != n) {
    throw std::invalid_argument("cumulative_reward: size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("cumulative_reward: negative time");
  if (t == 0.0) return 0.0;

  const auto weights = poisson_weights_cached(uniformized.q * t, options.epsilon);

  // E = (1/q) Σ_{k=0..R} (1 − CDF(k)) (π₀ Pᵏ)·r.  Since the normalized
  // weights sum to 1 over [L,R], the factor (1 − CDF(k)) is 1 for k < L and 0
  // for k ≥ R; running the cumulative sum incrementally avoids the quadratic
  // cdf() scan.
  std::vector<double> current = initial;
  std::vector<double> next(n, 0.0);
  double cdf = 0.0;
  double acc = 0.0;
  for (size_t k = 0; k <= weights->right; ++k) {
    cdf += weights->weight(k);
    const double factor = 1.0 - cdf;
    if (factor > 0.0) acc += factor * linalg::dot(current, state_rewards);
    if (k < weights->right) {
      uniformized.step(current, next);
      current.swap(next);
    }
  }
  return acc / uniformized.q;
}

double expected_cumulative_reward(const Ctmc& chain, const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options) {
  const size_t n = chain.state_count();
  if (initial.size() != n || state_rewards.size() != n) {
    throw std::invalid_argument("cumulative_reward: size mismatch");
  }
  if (t < 0.0) throw std::invalid_argument("cumulative_reward: negative time");
  if (t == 0.0) return 0.0;
  if (chain.max_exit_rate() == 0.0) {
    // No movement: the chain sits in the initial distribution for all of [0,t].
    return t * linalg::dot(initial, state_rewards);
  }
  return expected_cumulative_reward(uniformize(chain, options), initial,
                                    state_rewards, t, options);
}

double expected_instantaneous_reward(const Ctmc& chain,
                                     const std::vector<double>& initial,
                                     const std::vector<double>& state_rewards, double t,
                                     const TransientOptions& options) {
  if (state_rewards.size() != chain.state_count()) {
    throw std::invalid_argument("instantaneous_reward: size mismatch");
  }
  const std::vector<double> dist = transient_distribution(chain, initial, t, options);
  return linalg::dot(dist, state_rewards);
}

double steady_state_reward(const Ctmc& chain, const std::vector<double>& initial,
                           const std::vector<double>& state_rewards,
                           const SteadyStateOptions& options) {
  if (state_rewards.size() != chain.state_count()) {
    throw std::invalid_argument("steady_state_reward: size mismatch");
  }
  const SteadyStateResult result = steady_state(chain, initial, options);
  return linalg::dot(result.distribution, state_rewards);
}

double expected_time_fraction(const Ctmc& chain, const std::vector<double>& initial,
                              const std::vector<bool>& mask, double t,
                              const TransientOptions& options) {
  if (mask.size() != chain.state_count()) {
    throw std::invalid_argument("expected_time_fraction: mask size mismatch");
  }
  if (!(t > 0.0)) throw std::invalid_argument("expected_time_fraction: t must be > 0");
  std::vector<double> rewards(mask.size(), 0.0);
  for (size_t i = 0; i < mask.size(); ++i) rewards[i] = mask[i] ? 1.0 : 0.0;
  return expected_cumulative_reward(chain, initial, rewards, t, options) / t;
}

}  // namespace autosec::ctmc
