// Ordinary lumping of CTMCs by partition refinement — the paper's Section 5
// future-work item ("implementation of a targeted model checker" that merges
// redundant states to address scalability). A partition of the state space is
// ordinarily lumpable when all states of a block have identical aggregate
// rates into every other block; the quotient chain then preserves transient,
// steady-state and (block-constant) reward measures exactly, for any initial
// distribution that is pushed through the same aggregation.
//
// The initial partition is induced by per-state signatures — the observations
// that must be preserved (label indicator values, reward rates, and an
// initial-state marker when the initial distribution must survive
// aggregation). Refinement then splits blocks until the lumpability condition
// holds.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace autosec::ctmc {

struct LumpingResult {
  /// Quotient block per original state.
  std::vector<uint32_t> block_of;
  size_t block_count = 0;
  /// One representative original state per block.
  std::vector<uint32_t> representative;
  /// The quotient chain (block_count states).
  Ctmc quotient;

  /// Push a distribution over original states down to the quotient.
  std::vector<double> aggregate_distribution(const std::vector<double>& original) const;
  /// Push a per-state mask down to the quotient (must be block-constant,
  /// which holds when it was part of the signatures; throws otherwise).
  std::vector<bool> aggregate_mask(const std::vector<bool>& original) const;
  /// Push a block-constant reward vector down to the quotient (throws if the
  /// rewards differ within a block).
  std::vector<double> aggregate_rewards(const std::vector<double>& original) const;
};

/// Compute the coarsest ordinarily-lumpable partition refining the signature
/// partition. `signatures[s]` lists the observation values of state s; states
/// start in the same block iff their signature vectors are identical.
/// Runs in O(iterations * (states + transitions) * log) with hashing-based
/// splitting; exactness is asserted by construction (aggregate rates are
/// recomputed from a representative and verified against every member).
LumpingResult lump(const Ctmc& chain,
                   const std::vector<std::vector<double>>& signatures);

/// Convenience: build signatures from masks (0/1 per state), reward vectors,
/// and optionally the initial distribution, then lump.
LumpingResult lump_preserving(const Ctmc& chain,
                              const std::vector<std::vector<bool>>& masks,
                              const std::vector<std::vector<double>>& rewards,
                              const std::vector<double>* initial = nullptr);

}  // namespace autosec::ctmc
