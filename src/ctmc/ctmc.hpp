// Continuous-Time Markov Chain representation.
//
// A CTMC is stored as its off-diagonal transition-rate matrix R (R_ij = rate
// of jumping from state i to state j, i != j). The generator is
// Q = R − diag(E) with exit rates E_i = Σ_j R_ij. All analyses (transient,
// steady-state, rewards) work on this explicit-state representation; the
// symbolic layer produces it via state-space exploration.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace autosec::ctmc {

class Ctmc {
 public:
  /// Empty chain (0 states); useful as a placeholder in result aggregates.
  Ctmc() = default;

  /// `rates` must be square with zero diagonal (self-loops are meaningless in
  /// a CTMC and are rejected) and non-negative entries.
  explicit Ctmc(linalg::CsrMatrix rates);

  size_t state_count() const { return rates_.rows(); }
  const linalg::CsrMatrix& rates() const { return rates_; }

  double exit_rate(size_t state) const { return exit_rates_[state]; }
  const std::vector<double>& exit_rates() const { return exit_rates_; }
  double max_exit_rate() const { return max_exit_rate_; }

  /// Full generator Q = R − diag(E) (diagonal entries included).
  linalg::CsrMatrix generator() const;

  /// Uniformized DTMC P = I + Q/q. Requires q >= max exit rate; states whose
  /// exit rate is below q receive the compensating self-loop, so absorbing
  /// states get a self-loop of probability 1.
  linalg::CsrMatrix uniformized(double q) const;

  /// Transpose of the uniformized DTMC, built directly from the rate matrix
  /// in one counting-sort pass — the uniformization hot path never has to
  /// materialize P and transpose it. Entry values and per-row orders are
  /// identical to `uniformized(q).transposed()`.
  linalg::CsrMatrix uniformized_transposed(double q) const;

  /// Uniformization rate used by default: 1.02 * max exit rate (strictly above
  /// every exit rate so the uniformized chain is aperiodic), with a positive
  /// floor for the degenerate all-absorbing chain.
  double default_uniformization_rate() const;

  /// Embedded jump chain: P_ij = R_ij / E_i; absorbing states (E_i = 0) become
  /// self-loops with probability 1.
  linalg::CsrMatrix embedded_dtmc() const;

  /// Copy of this chain with the given states made absorbing (all outgoing
  /// transitions removed). Used for time-bounded reachability.
  Ctmc with_absorbing(const std::vector<bool>& absorbing) const;

 private:
  linalg::CsrMatrix rates_;
  std::vector<double> exit_rates_;
  double max_exit_rate_ = 0.0;
};

}  // namespace autosec::ctmc
