// Reward measures on CTMCs, the workhorse of the paper's analysis: the
// reported security metric is the expected cumulated time a violation label
// holds within one year — a cumulative state-reward measure R=?[C<=t] with
// reward 1 on violating states.
#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"

namespace autosec::ctmc {

/// Expected accumulated state reward up to time t:
///   E[ ∫₀ᵗ r(X_s) ds ]
/// computed via uniformization:
///   (1/q) Σ_k (1 − PoisCDF(k; qt)) · (π₀ Pᵏ) · r
/// The truncation point of the Poisson weights bounds the error by ε·t·‖r‖∞.
double expected_cumulative_reward(const Ctmc& chain, const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options = {});

/// Same, on a prebuilt uniformization stage (EngineSession caches the stage
/// so repeated cumulative-reward horizons skip the uniformize+transpose).
double expected_cumulative_reward(const Uniformized& uniformized,
                                  const std::vector<double>& initial,
                                  const std::vector<double>& state_rewards, double t,
                                  const TransientOptions& options = {});

/// Expected instantaneous state reward at time t: E[r(X_t)] = π(t)·r.
double expected_instantaneous_reward(const Ctmc& chain,
                                     const std::vector<double>& initial,
                                     const std::vector<double>& state_rewards, double t,
                                     const TransientOptions& options = {});

/// Long-run average state reward: π_∞ · r with π_∞ the steady-state
/// distribution from `initial`.
double steady_state_reward(const Ctmc& chain, const std::vector<double>& initial,
                           const std::vector<double>& state_rewards,
                           const SteadyStateOptions& options = {});

/// Fraction of the interval [0, t] spent in states of `mask` (expected), i.e.
/// expected_cumulative_reward with indicator rewards, divided by t. This is
/// the paper's "percentage of time message m is exploitable within 1 year".
double expected_time_fraction(const Ctmc& chain, const std::vector<double>& initial,
                              const std::vector<bool>& mask, double t,
                              const TransientOptions& options = {});

}  // namespace autosec::ctmc
