#include "ctmc/lumping.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/log.hpp"

namespace autosec::ctmc {

std::vector<double> LumpingResult::aggregate_distribution(
    const std::vector<double>& original) const {
  if (original.size() != block_of.size()) {
    throw std::invalid_argument("aggregate_distribution: size mismatch");
  }
  std::vector<double> out(block_count, 0.0);
  for (size_t s = 0; s < original.size(); ++s) out[block_of[s]] += original[s];
  return out;
}

std::vector<bool> LumpingResult::aggregate_mask(const std::vector<bool>& original) const {
  if (original.size() != block_of.size()) {
    throw std::invalid_argument("aggregate_mask: size mismatch");
  }
  std::vector<int8_t> value(block_count, -1);
  for (size_t s = 0; s < original.size(); ++s) {
    const int8_t bit = original[s] ? 1 : 0;
    int8_t& slot = value[block_of[s]];
    if (slot == -1) {
      slot = bit;
    } else if (slot != bit) {
      throw std::invalid_argument("aggregate_mask: mask is not block-constant");
    }
  }
  std::vector<bool> out(block_count, false);
  for (size_t b = 0; b < block_count; ++b) out[b] = value[b] == 1;
  return out;
}

std::vector<double> LumpingResult::aggregate_rewards(
    const std::vector<double>& original) const {
  if (original.size() != block_of.size()) {
    throw std::invalid_argument("aggregate_rewards: size mismatch");
  }
  std::vector<double> out(block_count, 0.0);
  std::vector<bool> seen(block_count, false);
  for (size_t s = 0; s < original.size(); ++s) {
    const uint32_t b = block_of[s];
    if (!seen[b]) {
      out[b] = original[s];
      seen[b] = true;
    } else if (out[b] != original[s]) {
      throw std::invalid_argument("aggregate_rewards: rewards not block-constant");
    }
  }
  return out;
}

LumpingResult lump(const Ctmc& chain,
                   const std::vector<std::vector<double>>& signatures) {
  const size_t n = chain.state_count();
  if (signatures.size() != n) {
    throw std::invalid_argument("lump: one signature per state required");
  }

  // Initial partition: identical signature vectors share a block.
  std::vector<uint32_t> block_of(n, 0);
  size_t block_count = 0;
  {
    std::map<std::vector<double>, uint32_t> block_ids;
    for (size_t s = 0; s < n; ++s) {
      const auto [it, inserted] =
          block_ids.try_emplace(signatures[s], static_cast<uint32_t>(block_count));
      if (inserted) ++block_count;
      block_of[s] = it->second;
    }
  }

  // Refine: split any block whose members disagree on aggregate rates into
  // other blocks. The refinement key includes the current block, so the new
  // partition always refines the old one; the loop terminates when the block
  // count stops growing (at most n iterations).
  using RefineKey = std::pair<uint32_t, std::vector<std::pair<uint32_t, double>>>;
  std::vector<std::pair<uint32_t, double>> aggregate;
  while (true) {
    std::map<RefineKey, uint32_t> new_ids;
    std::vector<uint32_t> new_block_of(n, 0);
    size_t new_count = 0;
    for (size_t s = 0; s < n; ++s) {
      aggregate.clear();
      const auto cols = chain.rates().row_columns(s);
      const auto vals = chain.rates().row_values(s);
      for (size_t k = 0; k < cols.size(); ++k) {
        const uint32_t target_block = block_of[cols[k]];
        if (target_block == block_of[s] || vals[k] == 0.0) continue;
        aggregate.emplace_back(target_block, vals[k]);
      }
      std::sort(aggregate.begin(), aggregate.end());
      // Merge duplicates (several transitions into the same target block).
      std::vector<std::pair<uint32_t, double>> merged;
      for (const auto& [block, rate] : aggregate) {
        if (!merged.empty() && merged.back().first == block) {
          merged.back().second += rate;
        } else {
          merged.emplace_back(block, rate);
        }
      }
      RefineKey key{block_of[s], std::move(merged)};
      const auto [it, inserted] =
          new_ids.try_emplace(std::move(key), static_cast<uint32_t>(new_count));
      if (inserted) ++new_count;
      new_block_of[s] = it->second;
    }
    const bool stable = new_count == block_count;
    block_of = std::move(new_block_of);
    block_count = new_count;
    if (stable) break;
  }

  LumpingResult result;
  result.block_of = block_of;
  result.block_count = block_count;
  result.representative.assign(block_count, UINT32_MAX);
  for (uint32_t s = 0; s < n; ++s) {
    if (result.representative[block_of[s]] == UINT32_MAX) {
      result.representative[block_of[s]] = s;
    }
  }

  // Quotient rates from each block's representative (stability guarantees
  // every member would give the same aggregates).
  linalg::CsrBuilder builder(block_count, block_count);
  for (uint32_t b = 0; b < block_count; ++b) {
    const uint32_t rep = result.representative[b];
    const auto cols = chain.rates().row_columns(rep);
    const auto vals = chain.rates().row_values(rep);
    for (size_t k = 0; k < cols.size(); ++k) {
      const uint32_t target = block_of[cols[k]];
      if (target != b && vals[k] != 0.0) builder.add(b, target, vals[k]);
    }
  }
  result.quotient = Ctmc(std::move(builder).build());
  AUTOSEC_LOG_INFO("lumping") << n << " states lumped into " << block_count
                              << " blocks";
  return result;
}

LumpingResult lump_preserving(const Ctmc& chain,
                              const std::vector<std::vector<bool>>& masks,
                              const std::vector<std::vector<double>>& rewards,
                              const std::vector<double>* initial) {
  const size_t n = chain.state_count();
  std::vector<std::vector<double>> signatures(n);
  for (size_t s = 0; s < n; ++s) {
    auto& signature = signatures[s];
    for (const auto& mask : masks) {
      if (mask.size() != n) throw std::invalid_argument("lump_preserving: mask size");
      signature.push_back(mask[s] ? 1.0 : 0.0);
    }
    for (const auto& reward : rewards) {
      if (reward.size() != n) throw std::invalid_argument("lump_preserving: reward size");
      signature.push_back(reward[s]);
    }
    if (initial != nullptr) {
      if (initial->size() != n) throw std::invalid_argument("lump_preserving: initial size");
      // Separating "in the support of the initial distribution" from the rest
      // is enough when the initial distribution is a point mass or uniform
      // over a block; for general distributions use the probability itself.
      signature.push_back((*initial)[s]);
    }
  }
  return lump(chain, signatures);
}

}  // namespace autosec::ctmc
