// Strongly connected components of the CTMC transition graph (Tarjan's
// algorithm, iterative so deep chains do not overflow the stack) and
// identification of bottom SCCs (BSCCs) — the recurrent classes a CTMC's
// long-run behavior is confined to.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace autosec::ctmc {

struct SccDecomposition {
  /// Component id per state; ids are in reverse topological order of the
  /// condensation (an edge between components goes from the higher id to the
  /// lower id — Tarjan numbering).
  std::vector<uint32_t> component_of;
  size_t component_count = 0;
  /// True for components with no edge leaving them (bottom SCCs).
  std::vector<bool> is_bottom;
  /// States of each component.
  std::vector<std::vector<uint32_t>> members;

  /// Indices of the bottom components.
  std::vector<uint32_t> bottom_components() const;
};

/// Decompose the directed graph given by the nonzero pattern of `adjacency`
/// (must be square). Zero-weight entries are ignored.
SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency);

/// The classic Prob0/Prob1 reachability precomputation (graph analysis, no
/// numerics), over the target-absorbed graph.
struct ReachabilityClassification {
  /// Pr[F target] > 0: the state can reach the target at all.
  std::vector<bool> possible;
  /// Pr[F target] = 1: no state reachable from here (without first passing
  /// through the target) is itself unable to reach the target. Target states
  /// are always in the set.
  std::vector<bool> certain;
};

ReachabilityClassification classify_reachability(const linalg::CsrMatrix& adjacency,
                                                 const std::vector<bool>& target);

/// The Prob1 set alone; see ReachabilityClassification::certain.
std::vector<bool> almost_sure_reachability(const linalg::CsrMatrix& adjacency,
                                           const std::vector<bool>& target);

}  // namespace autosec::ctmc
