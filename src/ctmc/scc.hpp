// Strongly connected components of the CTMC transition graph (Tarjan's
// algorithm, iterative so deep chains do not overflow the stack) and
// identification of bottom SCCs (BSCCs) — the recurrent classes a CTMC's
// long-run behavior is confined to.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.hpp"

namespace autosec::ctmc {

struct SccDecomposition {
  /// Component id per state; ids are in reverse topological order of the
  /// condensation (an edge between components goes from the higher id to the
  /// lower id — Tarjan numbering).
  std::vector<uint32_t> component_of;
  size_t component_count = 0;
  /// True for components with no edge leaving them (bottom SCCs).
  std::vector<bool> is_bottom;
  /// States of each component.
  std::vector<std::vector<uint32_t>> members;

  /// Indices of the bottom components.
  std::vector<uint32_t> bottom_components() const;
};

/// Decompose the directed graph given by the nonzero pattern of `adjacency`
/// (must be square). Zero-weight entries are ignored.
SccDecomposition strongly_connected_components(const linalg::CsrMatrix& adjacency);

}  // namespace autosec::ctmc
