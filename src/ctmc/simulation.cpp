#include "ctmc/simulation.hpp"

#include <cmath>
#include <stdexcept>

namespace autosec::ctmc {

namespace {

/// splitmix64: small, fast, high-quality 64-bit generator; chosen over
/// std::mt19937_64 to keep per-jump cost minimal and seeding trivial.
uint64_t next_u64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform in (0, 1]: never returns 0 so log() below stays finite.
double next_unit(uint64_t& state) {
  return (static_cast<double>(next_u64(state) >> 11) + 1.0) * 0x1.0p-53;
}

double exponential(uint64_t& state, double rate) {
  return -std::log(next_unit(state)) / rate;
}

struct Accumulator {
  double sum = 0.0;
  double sum_squares = 0.0;
  size_t count = 0;

  void add(double value) {
    sum += value;
    sum_squares += value * value;
    ++count;
  }

  SimulationEstimate estimate() const {
    SimulationEstimate out;
    out.samples = count;
    if (count == 0) return out;
    out.mean = sum / static_cast<double>(count);
    if (count > 1) {
      const double variance =
          (sum_squares - sum * out.mean) / static_cast<double>(count - 1);
      out.half_width = 1.96 * std::sqrt(std::max(variance, 0.0) /
                                        static_cast<double>(count));
    }
    return out;
  }
};

void check_inputs(const Ctmc& chain, uint32_t initial_state, double horizon,
                  size_t mask_size) {
  if (initial_state >= chain.state_count()) {
    throw std::invalid_argument("simulate: initial state out of range");
  }
  if (!(horizon > 0.0)) throw std::invalid_argument("simulate: horizon must be > 0");
  if (mask_size != chain.state_count()) {
    throw std::invalid_argument("simulate: mask/reward size mismatch");
  }
}

}  // namespace

Trajectory simulate_trajectory(const Ctmc& chain, uint32_t initial_state,
                               double horizon, uint64_t& rng_state) {
  if (initial_state >= chain.state_count()) {
    throw std::invalid_argument("simulate_trajectory: initial state out of range");
  }
  Trajectory trajectory;
  uint32_t current = initial_state;
  double now = 0.0;
  trajectory.states.push_back(current);
  trajectory.entry_times.push_back(0.0);

  while (now < horizon) {
    const double exit = chain.exit_rate(current);
    if (exit <= 0.0) break;  // absorbing: dwell covers the rest of the horizon
    now += exponential(rng_state, exit);
    if (now >= horizon) break;
    // Choose the jump target proportionally to the outgoing rates.
    double pick = next_unit(rng_state) * exit;
    const auto cols = chain.rates().row_columns(current);
    const auto vals = chain.rates().row_values(current);
    uint32_t target = cols.empty() ? current : cols.back();
    for (size_t k = 0; k < cols.size(); ++k) {
      pick -= vals[k];
      if (pick <= 0.0) {
        target = cols[k];
        break;
      }
    }
    current = target;
    trajectory.states.push_back(current);
    trajectory.entry_times.push_back(now);
  }
  return trajectory;
}

SimulationEstimate estimate_time_fraction(const Ctmc& chain, uint32_t initial_state,
                                          const std::vector<bool>& mask, double horizon,
                                          const SimulationOptions& options) {
  check_inputs(chain, initial_state, horizon, mask.size());
  uint64_t rng = options.seed;
  Accumulator accumulator;
  for (size_t i = 0; i < options.samples; ++i) {
    const Trajectory t = simulate_trajectory(chain, initial_state, horizon, rng);
    double in_mask = 0.0;
    for (size_t k = 0; k < t.states.size(); ++k) {
      if (!mask[t.states[k]]) continue;
      const double leave =
          k + 1 < t.states.size() ? t.entry_times[k + 1] : horizon;
      in_mask += leave - t.entry_times[k];
    }
    accumulator.add(in_mask / horizon);
  }
  return accumulator.estimate();
}

SimulationEstimate estimate_reachability(const Ctmc& chain, uint32_t initial_state,
                                         const std::vector<bool>& target, double horizon,
                                         const SimulationOptions& options) {
  check_inputs(chain, initial_state, horizon, target.size());
  uint64_t rng = options.seed;
  Accumulator accumulator;
  for (size_t i = 0; i < options.samples; ++i) {
    const Trajectory t = simulate_trajectory(chain, initial_state, horizon, rng);
    bool hit = false;
    for (uint32_t s : t.states) {
      if (target[s]) {
        hit = true;
        break;
      }
    }
    accumulator.add(hit ? 1.0 : 0.0);
  }
  return accumulator.estimate();
}

SimulationEstimate estimate_cumulative_reward(const Ctmc& chain, uint32_t initial_state,
                                              const std::vector<double>& rewards,
                                              double horizon,
                                              const SimulationOptions& options) {
  check_inputs(chain, initial_state, horizon, rewards.size());
  uint64_t rng = options.seed;
  Accumulator accumulator;
  for (size_t i = 0; i < options.samples; ++i) {
    const Trajectory t = simulate_trajectory(chain, initial_state, horizon, rng);
    double total = 0.0;
    for (size_t k = 0; k < t.states.size(); ++k) {
      const double leave =
          k + 1 < t.states.size() ? t.entry_times[k + 1] : horizon;
      total += rewards[t.states[k]] * (leave - t.entry_times[k]);
    }
    accumulator.add(total);
  }
  return accumulator.estimate();
}

}  // namespace autosec::ctmc
