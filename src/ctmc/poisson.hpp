// Truncated Poisson weights for uniformization, in the spirit of Fox & Glynn
// (1988). The weights w_k = e^{-λ} λ^k / k! are computed by a numerically
// stable recurrence centred at the mode ⌊λ⌋ (where the pmf is largest), with
// left/right truncation once the captured mass reaches 1 − ε, and finally
// normalized so the retained weights sum to exactly 1.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace autosec::ctmc {

struct PoissonWeights {
  size_t left = 0;   ///< first retained index k (inclusive)
  size_t right = 0;  ///< last retained index k (inclusive)
  /// weights[k - left] ≈ Poisson(λ) pmf at k, normalized over [left, right].
  std::vector<double> weights;
  /// Mass captured before normalization (≥ 1 − ε).
  double captured_mass = 0.0;

  double weight(size_t k) const {
    return (k < left || k > right) ? 0.0 : weights[k - left];
  }

  /// Σ_{j ≤ k} weight(j) over the retained range.
  double cdf(size_t k) const;
};

/// Compute the truncated weights; λ ≥ 0, 0 < ε < 1. λ = 0 yields the single
/// weight w_0 = 1.
PoissonWeights poisson_weights(double lambda, double epsilon = 1e-12);

/// Memoized poisson_weights keyed by the exact (λ, ε) bit patterns: repeated
/// F<=t / C<=t queries at the same uniformized horizon q·t reuse the weight
/// vector instead of recomputing the Fox–Glynn expansion. Thread-safe; the
/// returned pointer stays valid after later calls and cache resets.
std::shared_ptr<const PoissonWeights> poisson_weights_cached(
    double lambda, double epsilon = 1e-12);

struct PoissonCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t entries = 0;
  size_t evictions = 0;  ///< entries dropped by capacity eviction
};

/// Process-wide cache counters (for tests and stage reporting).
PoissonCacheStats poisson_cache_stats();

/// Change the cache capacity (clamped to >= 2, default 1024); entries beyond
/// the new capacity are evicted oldest-first. Returns the previous capacity.
/// When the cache fills, the oldest-inserted half is evicted — not the whole
/// cache — so parameter sweeps straddling the limit keep a warm working set.
size_t set_poisson_cache_capacity(size_t capacity);

/// Drop all cached weights and zero the counters.
void reset_poisson_cache();

}  // namespace autosec::ctmc
