// Truncated Poisson weights for uniformization, in the spirit of Fox & Glynn
// (1988). The weights w_k = e^{-λ} λ^k / k! are computed by a numerically
// stable recurrence centred at the mode ⌊λ⌋ (where the pmf is largest), with
// left/right truncation once the captured mass reaches 1 − ε, and finally
// normalized so the retained weights sum to exactly 1.
#pragma once

#include <cstddef>
#include <vector>

namespace autosec::ctmc {

struct PoissonWeights {
  size_t left = 0;   ///< first retained index k (inclusive)
  size_t right = 0;  ///< last retained index k (inclusive)
  /// weights[k - left] ≈ Poisson(λ) pmf at k, normalized over [left, right].
  std::vector<double> weights;
  /// Mass captured before normalization (≥ 1 − ε).
  double captured_mass = 0.0;

  double weight(size_t k) const {
    return (k < left || k > right) ? 0.0 : weights[k - left];
  }

  /// Σ_{j ≤ k} weight(j) over the retained range.
  double cdf(size_t k) const;
};

/// Compute the truncated weights; λ ≥ 0, 0 < ε < 1. λ = 0 yields the single
/// weight w_0 = 1.
PoissonWeights poisson_weights(double lambda, double epsilon = 1e-12);

}  // namespace autosec::ctmc
