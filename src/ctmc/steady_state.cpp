#include "ctmc/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ctmc/scc.hpp"
#include "ctmc/transient.hpp"
#include "linalg/power_iteration.hpp"
#include "linalg/vector_ops.hpp"
#include "util/cancel.hpp"
#include "util/failure.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

#include <atomic>

namespace autosec::ctmc {

namespace {

/// Stationary distribution within one BSCC, returned over the BSCC's local
/// state indices. The BSCC has no outgoing edges, so restricting the rate
/// matrix to its members yields a conservative generator. When the
/// Gauss-Seidel solve fails (divergence or iteration cap), the uniformized
/// power iteration gets one shot before the solve unwinds as a typed
/// solver_diverged failure; `fallbacks` counts the rungs taken beyond the
/// first.
std::vector<double> bscc_stationary(const Ctmc& chain,
                                    const std::vector<uint32_t>& members,
                                    const linalg::IterativeOptions& solver,
                                    std::atomic<size_t>& fallbacks) {
  const size_t m = members.size();
  if (m == 1) return {1.0};

  std::vector<uint32_t> local_of(chain.state_count(), UINT32_MAX);
  for (uint32_t i = 0; i < m; ++i) local_of[members[i]] = i;

  // Build the transposed restricted generator directly: row i of Qt collects
  // incoming rates Q_ji plus the diagonal -E_i. Counting-sort assembly: the
  // scatter scans local source states in ascending order and emits each row's
  // diagonal while the scan sits on that row (no local self-loops exist), so
  // every Qt row comes out with strictly ascending columns — no builder sort.
  std::vector<double> exit(m, 0.0);
  std::vector<uint32_t> offsets(m + 1, 0);
  for (uint32_t local = 0; local < m; ++local) {
    ++offsets[local + 1];  // diagonal
    const auto cols = chain.rates().row_columns(members[local]);
    const auto vals = chain.rates().row_values(members[local]);
    for (size_t k = 0; k < cols.size(); ++k) {
      const uint32_t target_local = local_of[cols[k]];
      if (target_local == UINT32_MAX) {
        throw std::logic_error("bscc_stationary: edge leaves the BSCC");
      }
      ++offsets[target_local + 1];
      exit[local] += vals[k];
    }
  }
  for (uint32_t i = 0; i < m; ++i) offsets[i + 1] += offsets[i];
  std::vector<uint32_t> columns(offsets[m]);
  std::vector<double> values(offsets[m]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint32_t local = 0; local < m; ++local) {
    const uint32_t diagonal_pos = cursor[local]++;
    columns[diagonal_pos] = local;
    values[diagonal_pos] = -exit[local];
    const auto cols = chain.rates().row_columns(members[local]);
    const auto vals = chain.rates().row_values(members[local]);
    for (size_t k = 0; k < cols.size(); ++k) {
      const uint32_t pos = cursor[local_of[cols[k]]]++;
      columns[pos] = local;
      values[pos] = vals[k];
    }
  }
  const linalg::CsrMatrix Qt(m, m, std::move(offsets), std::move(columns),
                             std::move(values));
  auto result = linalg::stationary_from_transposed(Qt, solver);
  if (result.cancelled) throw util::Cancelled("steady_state");
  if (result.converged) return std::move(result.x);

  // Gauss-Seidel failed; the uniformized power iteration is slower but has
  // weaker convergence requirements (only aperiodicity + irreducibility).
  fallbacks.fetch_add(1, std::memory_order_relaxed);
  util::metrics::registry().add("solver.stationary_fallbacks");
  auto power = linalg::stationary_power_from_transposed(Qt, solver);
  if (power.cancelled) throw util::Cancelled("steady_state");
  if (!power.converged) {
    util::FailureProgress progress;
    progress.iterations = result.iterations + power.iterations;
    progress.residual = power.final_delta;
    throw util::EngineFailure(
        util::FailureCode::kSolverDiverged, "steady_state",
        "bscc_stationary: no solver rung converged (gauss_seidel " +
            std::string(result.diverged ? "diverged" : "stalled") +
            ", power " + std::string(power.diverged ? "diverged" : "stalled") +
            ")",
        progress);
  }
  return std::move(power.x);
}

}  // namespace

SteadyStateResult steady_state(const Ctmc& chain, const std::vector<double>& initial,
                               const SteadyStateOptions& options) {
  const size_t n = chain.state_count();
  // Same contract as transient analysis: reject negative entries and mass
  // above 1 instead of silently folding them into the BSCC weighting.
  check_distribution(n, initial, "steady_state");

  const SccDecomposition sccs = strongly_connected_components(chain.rates());
  const std::vector<uint32_t> bottoms = sccs.bottom_components();

  SteadyStateResult result;
  result.bscc_count = bottoms.size();
  result.distribution.assign(n, 0.0);
  std::atomic<size_t> fallbacks{0};

  // Map component id -> index into `bottoms` (or UINT32_MAX for transient).
  std::vector<uint32_t> bottom_index(sccs.component_count, UINT32_MAX);
  for (uint32_t b = 0; b < bottoms.size(); ++b) bottom_index[bottoms[b]] = b;

  // Qualitative pre-pass: which BSCCs are reachable from each component?
  // Tarjan ids are in reverse topological order (edges go from higher id to
  // lower id), so a single sweep in increasing id order propagates the
  // reach-sets. Components that can reach exactly one BSCC are absorbed into
  // it with probability 1 — no numerics needed. This matters beyond speed:
  // nearly-absorbing transient layers (e.g. an unpatchable broken-protection
  // flag whose only escape rate is tiny) make the fixpoint iteration
  // arbitrarily slow, while the graph argument settles them exactly.
  std::vector<std::vector<uint32_t>> reachable_bsccs(sccs.component_count);
  for (uint32_t c = 0; c < sccs.component_count; ++c) {
    if (bottom_index[c] != UINT32_MAX) {
      reachable_bsccs[c] = {bottom_index[c]};
      continue;
    }
    std::vector<uint32_t> merged;
    for (uint32_t s : sccs.members[c]) {
      const auto cols = chain.rates().row_columns(s);
      const auto vals = chain.rates().row_values(s);
      for (size_t k = 0; k < cols.size(); ++k) {
        if (vals[k] == 0.0) continue;
        const uint32_t target_component = sccs.component_of[cols[k]];
        if (target_component == c) continue;
        // target_component < c in Tarjan numbering: already computed.
        for (uint32_t b : reachable_bsccs[target_component]) merged.push_back(b);
      }
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    reachable_bsccs[c] = std::move(merged);
  }

  // Absorption probability per state into each BSCC. States inside a BSCC
  // and states that can reach only one BSCC are settled by the pre-pass; only
  // genuinely branching transient states enter the linear system
  // x = A·x + r on the embedded DTMC (A = branching-transient block, r = the
  // one-step probability of entering the BSCC or a state already determined
  // to be absorbed into it).
  std::vector<uint32_t> transient_states;  // branching transient states only
  std::vector<uint32_t> transient_local(n, UINT32_MAX);
  // determined_bscc[s] = the unique BSCC state s is absorbed into, or
  // UINT32_MAX when branching.
  std::vector<uint32_t> determined_bscc(n, UINT32_MAX);
  for (uint32_t s = 0; s < n; ++s) {
    const uint32_t component = sccs.component_of[s];
    if (bottom_index[component] != UINT32_MAX) {
      determined_bscc[s] = bottom_index[component];
    } else if (reachable_bsccs[component].size() == 1) {
      determined_bscc[s] = reachable_bsccs[component][0];
    } else {
      transient_local[s] = static_cast<uint32_t>(transient_states.size());
      transient_states.push_back(s);
    }
  }

  {
    util::metrics::Registry& metrics = util::metrics::registry();
    if (metrics.enabled()) {
      metrics.add("steady_state.solves");
      metrics.add("steady_state.bsccs", bottoms.size());
      metrics.add("steady_state.absorption_states", transient_states.size());
      metrics.gauge("steady_state.last_bsccs", static_cast<double>(bottoms.size()));
      metrics.gauge("steady_state.last_absorption_size",
                    static_cast<double>(transient_states.size()));
    }
  }

  const linalg::CsrMatrix embedded = chain.embedded_dtmc();
  std::vector<std::vector<double>> absorb(bottoms.size());

  // Transient-to-transient block (shared across BSCC targets).
  linalg::CsrBuilder block_builder(transient_states.size(), transient_states.size());
  for (uint32_t local = 0; local < transient_states.size(); ++local) {
    const uint32_t global = transient_states[local];
    const auto cols = embedded.row_columns(global);
    const auto vals = embedded.row_values(global);
    for (size_t k = 0; k < cols.size(); ++k) {
      const uint32_t tl = transient_local[cols[k]];
      if (tl != UINT32_MAX) block_builder.add(local, tl, vals[k]);
    }
  }
  const linalg::CsrMatrix transient_block = std::move(block_builder).build();

  // Independent per-BSCC absorption solves: each b writes only absorb[b], so
  // fanning them across the pool keeps results identical to the serial sweep.
  util::parallel_for(0, bottoms.size(), 1, [&](size_t b_begin, size_t b_end) {
    for (size_t b = b_begin; b < b_end; ++b) {
      absorb[b].assign(n, 0.0);
      for (uint32_t s = 0; s < n; ++s) {
        if (determined_bscc[s] == b) absorb[b][s] = 1.0;
      }
      if (transient_states.empty()) continue;

      std::vector<double> one_step(transient_states.size(), 0.0);
      for (uint32_t local = 0; local < transient_states.size(); ++local) {
        const uint32_t global = transient_states[local];
        const auto cols = embedded.row_columns(global);
        const auto vals = embedded.row_values(global);
        for (size_t k = 0; k < cols.size(); ++k) {
          if (determined_bscc[cols[k]] == b) one_step[local] += vals[k];
        }
      }
      auto solved = linalg::solve_fixpoint(transient_block, one_step, options.solver);
      if (solved.cancelled) throw util::Cancelled("steady_state");
      if (solved.attempts.size() > 1) {
        fallbacks.fetch_add(solved.attempts.size() - 1,
                            std::memory_order_relaxed);
      }
      if (!solved.converged) {
        util::FailureProgress progress;
        progress.iterations = solved.iterations;
        progress.residual = solved.final_delta;
        throw util::EngineFailure(
            util::FailureCode::kSolverDiverged, "steady_state",
            "steady_state: absorption solve failed on every rung (" +
                std::to_string(solved.attempts.size()) + " attempted)",
            progress);
      }
      for (uint32_t local = 0; local < transient_states.size(); ++local) {
        absorb[b][transient_states[local]] = solved.x[local];
      }
    }
  });

  result.bscc_probability.assign(bottoms.size(), 0.0);
  for (uint32_t b = 0; b < bottoms.size(); ++b) {
    result.bscc_probability[b] = linalg::dot(initial, absorb[b]);
    result.bscc_states.push_back(sccs.members[bottoms[b]]);
  }

  // Per-BSCC stationary solves are likewise independent; BSCC member sets are
  // disjoint, so the distribution writes never overlap.
  util::parallel_for(0, bottoms.size(), 1, [&](size_t b_begin, size_t b_end) {
    for (size_t b = b_begin; b < b_end; ++b) {
      const double weight = result.bscc_probability[b];
      if (weight <= 0.0) continue;
      const std::vector<double> local_pi = bscc_stationary(
          chain, sccs.members[bottoms[b]], options.solver, fallbacks);
      const auto& members = sccs.members[bottoms[b]];
      for (size_t i = 0; i < members.size(); ++i) {
        result.distribution[members[i]] += weight * local_pi[i];
      }
    }
  });
  result.solver_fallbacks = fallbacks.load(std::memory_order_relaxed);
  return result;
}

std::vector<double> stationary_distribution(const Ctmc& chain,
                                            const SteadyStateOptions& options) {
  const SccDecomposition sccs = strongly_connected_components(chain.rates());
  if (sccs.component_count != 1) {
    throw std::invalid_argument(
        "stationary_distribution: chain is reducible; use steady_state()");
  }
  std::vector<uint32_t> all(chain.state_count());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  std::atomic<size_t> fallbacks{0};
  return bscc_stationary(chain, all, options.solver, fallbacks);
}

}  // namespace autosec::ctmc
