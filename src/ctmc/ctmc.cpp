#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <stdexcept>

namespace autosec::ctmc {

Ctmc::Ctmc(linalg::CsrMatrix rates) : rates_(std::move(rates)) {
  if (rates_.rows() != rates_.cols()) {
    throw std::invalid_argument("Ctmc: rate matrix must be square");
  }
  const size_t n = rates_.rows();
  exit_rates_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    double exit = 0.0;
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        throw std::invalid_argument("Ctmc: self-loop rate in rate matrix");
      }
      if (vals[k] < 0.0) {
        throw std::invalid_argument("Ctmc: negative transition rate");
      }
      exit += vals[k];
    }
    exit_rates_[i] = exit;
    max_exit_rate_ = std::max(max_exit_rate_, exit);
  }
}

namespace {

/// Direct CSR assembly shared by generator() and uniformized(): each output
/// row is the (scaled) rates row with a diagonal entry spliced into its
/// sorted position. The rates rows are strictly ascending and diagonal-free,
/// so the result rows stay strictly ascending — no builder sort needed.
/// `diagonal(i)` returns the diagonal value of row i; rows whose diagonal
/// predicate `keep(i)` is false get no diagonal entry.
template <typename Diagonal, typename Keep>
linalg::CsrMatrix assemble_with_diagonal(const linalg::CsrMatrix& rates,
                                         double scale, Diagonal diagonal,
                                         Keep keep) {
  const size_t n = rates.rows();
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    offsets[i + 1] = offsets[i] +
                     static_cast<uint32_t>(rates.row_columns(i).size()) +
                     (keep(i) ? 1 : 0);
  }
  std::vector<uint32_t> columns(offsets[n]);
  std::vector<double> values(offsets[n]);
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto cols = rates.row_columns(i);
    const auto vals = rates.row_values(i);
    const bool with_diagonal = keep(i);
    size_t k = 0;
    for (; k < cols.size() && cols[k] < i; ++k) {
      columns[out] = cols[k];
      values[out++] = vals[k] * scale;
    }
    if (with_diagonal) {
      columns[out] = static_cast<uint32_t>(i);
      values[out++] = diagonal(i);
    }
    for (; k < cols.size(); ++k) {
      columns[out] = cols[k];
      values[out++] = vals[k] * scale;
    }
  }
  return linalg::CsrMatrix(n, n, std::move(offsets), std::move(columns),
                           std::move(values));
}

}  // namespace

linalg::CsrMatrix Ctmc::generator() const {
  return assemble_with_diagonal(
      rates_, 1.0, [&](size_t i) { return -exit_rates_[i]; },
      [&](size_t i) { return exit_rates_[i] > 0.0; });
}

linalg::CsrMatrix Ctmc::uniformized(double q) const {
  if (q < max_exit_rate_) {
    throw std::invalid_argument("uniformized: q must be >= max exit rate");
  }
  if (!(q > 0.0)) {
    throw std::invalid_argument("uniformized: q must be positive");
  }
  return assemble_with_diagonal(
      rates_, 1.0 / q, [&](size_t i) { return 1.0 - exit_rates_[i] / q; },
      [&](size_t i) { return 1.0 - exit_rates_[i] / q > 0.0; });
}

linalg::CsrMatrix Ctmc::uniformized_transposed(double q) const {
  if (q < max_exit_rate_) {
    throw std::invalid_argument("uniformized: q must be >= max exit rate");
  }
  if (!(q > 0.0)) {
    throw std::invalid_argument("uniformized: q must be positive");
  }
  // Pᵀ in one counting-sort pass over the rate matrix — the uniformization
  // hot path never materializes P itself. Row c of Pᵀ collects P(r, c) for
  // ascending r, and the compensating self-loop of state r is emitted while
  // the scan sits on r, so every result row stays strictly ascending.
  const size_t n = state_count();
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    if (1.0 - exit_rates_[r] / q > 0.0) ++offsets[r + 1];
    for (const uint32_t c : rates_.row_columns(r)) ++offsets[c + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<uint32_t> columns(offsets[n]);
  std::vector<double> values(offsets[n]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    const double self = 1.0 - exit_rates_[r] / q;
    if (self > 0.0) {
      const uint32_t pos = cursor[r]++;
      columns[pos] = static_cast<uint32_t>(r);
      values[pos] = self;
    }
    const auto cols = rates_.row_columns(r);
    const auto vals = rates_.row_values(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      const uint32_t pos = cursor[cols[k]]++;
      columns[pos] = static_cast<uint32_t>(r);
      values[pos] = vals[k] / q;
    }
  }
  return linalg::CsrMatrix(n, n, std::move(offsets), std::move(columns),
                           std::move(values));
}

double Ctmc::default_uniformization_rate() const {
  constexpr double kFloor = 1e-9;  // degenerate all-absorbing chain
  return std::max(max_exit_rate_ * 1.02, kFloor);
}

linalg::CsrMatrix Ctmc::embedded_dtmc() const {
  const size_t n = state_count();
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t row_nnz =
        exit_rates_[i] > 0.0 ? rates_.row_columns(i).size() : 1;
    offsets[i + 1] = offsets[i] + static_cast<uint32_t>(row_nnz);
  }
  std::vector<uint32_t> columns(offsets[n]);
  std::vector<double> values(offsets[n]);
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (exit_rates_[i] <= 0.0) {
      columns[out] = static_cast<uint32_t>(i);
      values[out++] = 1.0;
      continue;
    }
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      columns[out] = cols[k];
      values[out++] = vals[k] / exit_rates_[i];
    }
  }
  return linalg::CsrMatrix(n, n, std::move(offsets), std::move(columns),
                           std::move(values));
}

Ctmc Ctmc::with_absorbing(const std::vector<bool>& absorbing) const {
  const size_t n = state_count();
  if (absorbing.size() != n) {
    throw std::invalid_argument("with_absorbing: mask size mismatch");
  }
  // Row-filtered copy of the rate matrix: absorbing rows become empty, every
  // other row is copied verbatim (already strictly ascending).
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t row_nnz = absorbing[i] ? 0 : rates_.row_columns(i).size();
    offsets[i + 1] = offsets[i] + static_cast<uint32_t>(row_nnz);
  }
  std::vector<uint32_t> columns(offsets[n]);
  std::vector<double> values(offsets[n]);
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (absorbing[i]) continue;
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      columns[out] = cols[k];
      values[out++] = vals[k];
    }
  }
  return Ctmc(linalg::CsrMatrix(n, n, std::move(offsets), std::move(columns),
                                std::move(values)));
}

}  // namespace autosec::ctmc
