#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <stdexcept>

namespace autosec::ctmc {

Ctmc::Ctmc(linalg::CsrMatrix rates) : rates_(std::move(rates)) {
  if (rates_.rows() != rates_.cols()) {
    throw std::invalid_argument("Ctmc: rate matrix must be square");
  }
  const size_t n = rates_.rows();
  exit_rates_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    double exit = 0.0;
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        throw std::invalid_argument("Ctmc: self-loop rate in rate matrix");
      }
      if (vals[k] < 0.0) {
        throw std::invalid_argument("Ctmc: negative transition rate");
      }
      exit += vals[k];
    }
    exit_rates_[i] = exit;
    max_exit_rate_ = std::max(max_exit_rate_, exit);
  }
}

linalg::CsrMatrix Ctmc::generator() const {
  const size_t n = state_count();
  linalg::CsrBuilder builder(n, n);
  for (size_t i = 0; i < n; ++i) {
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) builder.add(i, cols[k], vals[k]);
    if (exit_rates_[i] > 0.0) builder.add(i, i, -exit_rates_[i]);
  }
  return std::move(builder).build();
}

linalg::CsrMatrix Ctmc::uniformized(double q) const {
  if (q < max_exit_rate_) {
    throw std::invalid_argument("uniformized: q must be >= max exit rate");
  }
  if (!(q > 0.0)) {
    throw std::invalid_argument("uniformized: q must be positive");
  }
  const size_t n = state_count();
  linalg::CsrBuilder builder(n, n);
  for (size_t i = 0; i < n; ++i) {
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) builder.add(i, cols[k], vals[k] / q);
    const double self = 1.0 - exit_rates_[i] / q;
    if (self > 0.0) builder.add(i, i, self);
  }
  return std::move(builder).build();
}

double Ctmc::default_uniformization_rate() const {
  constexpr double kFloor = 1e-9;  // degenerate all-absorbing chain
  return std::max(max_exit_rate_ * 1.02, kFloor);
}

linalg::CsrMatrix Ctmc::embedded_dtmc() const {
  const size_t n = state_count();
  linalg::CsrBuilder builder(n, n);
  for (size_t i = 0; i < n; ++i) {
    if (exit_rates_[i] <= 0.0) {
      builder.add(i, i, 1.0);
      continue;
    }
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      builder.add(i, cols[k], vals[k] / exit_rates_[i]);
    }
  }
  return std::move(builder).build();
}

Ctmc Ctmc::with_absorbing(const std::vector<bool>& absorbing) const {
  const size_t n = state_count();
  if (absorbing.size() != n) {
    throw std::invalid_argument("with_absorbing: mask size mismatch");
  }
  linalg::CsrBuilder builder(n, n);
  for (size_t i = 0; i < n; ++i) {
    if (absorbing[i]) continue;
    const auto cols = rates_.row_columns(i);
    const auto vals = rates_.row_values(i);
    for (size_t k = 0; k < cols.size(); ++k) builder.add(i, cols[k], vals[k]);
  }
  return Ctmc(std::move(builder).build());
}

}  // namespace autosec::ctmc
