// Statistical model checking by discrete-event (Gillespie) simulation of the
// CTMC. Complements the numerical engine the same way PRISM's simulator
// complements its symbolic engines: an independent implementation path whose
// estimates cross-validate the uniformization/steady-state code, and a
// fallback for models too large for explicit-state numerics.
//
// Estimates come with 95% confidence half-widths (normal approximation);
// every run is reproducible through the caller-supplied seed.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace autosec::ctmc {

struct SimulationOptions {
  uint64_t seed = 1;
  size_t samples = 10000;
};

struct SimulationEstimate {
  double mean = 0.0;
  /// Half-width of the 95% confidence interval (1.96 * stderr).
  double half_width = 0.0;
  size_t samples = 0;

  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

/// One simulated trajectory: visited states and the time entering each.
/// entry_times[0] == 0; the trajectory ends when `horizon` is exceeded or an
/// absorbing state is entered (its dwell then extends to the horizon).
struct Trajectory {
  std::vector<uint32_t> states;
  std::vector<double> entry_times;
};

/// Simulate a single trajectory from `initial_state` up to `horizon`.
/// `rng_state` is advanced; pass the same value to reproduce a trajectory.
Trajectory simulate_trajectory(const Ctmc& chain, uint32_t initial_state,
                               double horizon, uint64_t& rng_state);

/// Estimate the expected fraction of [0, horizon] spent in `mask` states —
/// the statistical counterpart of expected_time_fraction().
SimulationEstimate estimate_time_fraction(const Ctmc& chain, uint32_t initial_state,
                                          const std::vector<bool>& mask, double horizon,
                                          const SimulationOptions& options = {});

/// Estimate P[reach a `target` state within `horizon`] — the statistical
/// counterpart of bounded_reachability() with an unrestricted left operand.
SimulationEstimate estimate_reachability(const Ctmc& chain, uint32_t initial_state,
                                         const std::vector<bool>& target, double horizon,
                                         const SimulationOptions& options = {});

/// Estimate the expected accumulated state reward over [0, horizon].
SimulationEstimate estimate_cumulative_reward(const Ctmc& chain, uint32_t initial_state,
                                              const std::vector<double>& rewards,
                                              double horizon,
                                              const SimulationOptions& options = {});

}  // namespace autosec::ctmc
