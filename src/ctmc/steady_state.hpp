// Long-run (steady-state) distribution of a CTMC from an initial
// distribution. General chains are handled via BSCC decomposition: the
// long-run distribution is the mixture of per-BSCC stationary distributions,
// weighted by the probability of being absorbed into each BSCC.
#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"
#include "linalg/gauss_seidel.hpp"

namespace autosec::ctmc {

struct SteadyStateOptions {
  linalg::IterativeOptions solver;
};

struct SteadyStateResult {
  std::vector<double> distribution;  ///< long-run probability per state
  size_t bscc_count = 0;
  /// Probability of ending up in each BSCC (aligned with `bscc_states`).
  std::vector<double> bscc_probability;
  std::vector<std::vector<uint32_t>> bscc_states;
  /// Solver rungs taken beyond the first across every absorption and
  /// stationary solve — 0 on a clean run; surfaced through SessionStats and
  /// the serve response so degraded solves are visible, never silent.
  size_t solver_fallbacks = 0;
};

/// Long-run distribution starting from `initial`.
SteadyStateResult steady_state(const Ctmc& chain, const std::vector<double>& initial,
                               const SteadyStateOptions& options = {});

/// Stationary distribution of an irreducible chain (single BSCC covering all
/// states); throws if the chain is reducible. This is the πQ = 0 solution the
/// paper computes in its worked example (Eq. 13-15).
std::vector<double> stationary_distribution(const Ctmc& chain,
                                            const SteadyStateOptions& options = {});

}  // namespace autosec::ctmc
