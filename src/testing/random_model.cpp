#include "testing/random_model.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "util/numeric.hpp"
#include "util/strings.hpp"

namespace autosec::testing {

namespace {

using automotive::Architecture;
using automotive::Bus;
using automotive::BusKind;
using automotive::Ecu;
using automotive::FailureSpec;
using automotive::GuardianSpec;
using automotive::Interface;
using automotive::Message;
using automotive::Protection;
using automotive::SwitchSpec;
using symbolic::BinaryOp;
using symbolic::Command;
using symbolic::ConstantDecl;
using symbolic::Expr;
using symbolic::FormulaDecl;
using symbolic::LabelDecl;
using symbolic::Model;
using symbolic::Module;
using symbolic::RewardItem;
using symbolic::RewardStructDecl;
using symbolic::Value;
using symbolic::VariableDecl;

/// SplitMix64 scrambler: spreads consecutive seeds over the full state space
/// before they feed the mt19937_64, so seed and seed+1 give unrelated runs.
uint64_t scramble(uint64_t seed) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(scramble(seed)) {}

  size_t index(size_t count) {  // uniform in [0, count)
    return std::uniform_int_distribution<size_t>(0, count - 1)(engine_);
  }
  int32_t int_in(int32_t low, int32_t high) {
    return std::uniform_int_distribution<int32_t>(low, high)(engine_);
  }
  bool chance(double probability) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < probability;
  }
  /// Log-uniform rate in [low, high], quantized to 6 significant digits so
  /// the 12-digit .arch writer and the 17-digit model writer both round-trip
  /// it exactly.
  double rate(double low, double high) {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    const double raw = low * std::pow(high / low, u);
    return *util::parse_double(util::format_sig(raw, 6));
  }

 private:
  std::mt19937_64 engine_;
};

struct VariableInfo {
  std::string name;
  size_t module = 0;
  int32_t high = 0;
};

/// Random comparison over one variable, e.g. (v2 <= 1).
Expr random_comparison(Rng& rng, const std::vector<VariableInfo>& variables) {
  const VariableInfo& var = variables[rng.index(variables.size())];
  const Expr lhs = Expr::ident(var.name);
  const Expr rhs = Expr::literal(rng.int_in(0, var.high));
  constexpr BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                               BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  return Expr::binary(kOps[rng.index(6)], lhs, rhs);
}

/// Random boolean state formula: one comparison, or an and/or of two, with an
/// occasional negation on top.
Expr random_state_formula(Rng& rng, const std::vector<VariableInfo>& variables) {
  Expr expr = random_comparison(rng, variables);
  if (rng.chance(0.5)) {
    const Expr other = random_comparison(rng, variables);
    expr = rng.chance(0.5) ? (expr && other) : (expr || other);
  }
  if (rng.chance(0.15)) expr = !expr;
  return expr;
}

/// Random rate expression: a literal, a constant reference, or a scaled
/// constant.
Expr random_rate_expr(Rng& rng, const std::vector<std::string>& constants,
                      const RandomModelOptions& options) {
  if (!constants.empty() && rng.chance(0.4)) {
    const Expr constant = Expr::ident(constants[rng.index(constants.size())]);
    if (rng.chance(0.3)) return constant * Expr::literal(rng.rate(0.1, 4.0));
    return constant;
  }
  return Expr::literal(rng.rate(options.min_rate, options.max_rate));
}

}  // namespace

Model random_model(uint64_t seed, const RandomModelOptions& options) {
  Rng rng(seed);
  Model model;

  // Constants: rate-valued, referenced from some command rates (and the
  // override machinery in the differential harness).
  const size_t constant_count = 1 + rng.index(options.max_constants);
  std::vector<std::string> constant_names;
  for (size_t i = 0; i < constant_count; ++i) {
    ConstantDecl decl;
    decl.name = "c" + std::to_string(i);
    decl.type = ConstantDecl::Type::kDouble;
    decl.value = Expr::literal(rng.rate(options.min_rate, options.max_rate));
    constant_names.push_back(decl.name);
    model.constants.push_back(std::move(decl));
  }

  // Variables, distributed round-robin over the modules, with the domain
  // product capped by the state budget.
  const size_t module_count = 1 + rng.index(options.max_modules);
  std::vector<VariableInfo> variables;
  size_t budget = options.state_budget;
  const size_t variable_count = 1 + rng.index(options.max_variables);
  for (size_t i = 0; i < variable_count; ++i) {
    int32_t high = rng.int_in(1, options.max_range);
    while (high > 1 && budget / (high + 1) < 1) --high;
    if (budget / (high + 1) < 1) break;
    budget /= (high + 1);
    variables.push_back({"v" + std::to_string(i), i % module_count, high});
  }

  for (size_t m = 0; m < module_count; ++m) {
    model.modules.push_back(Module{"m" + std::to_string(m), {}, {}});
  }
  for (const VariableInfo& var : variables) {
    VariableDecl decl;
    decl.name = var.name;
    decl.low = Expr::literal(0);
    decl.high = Expr::literal(var.high);
    // Bias the initial state toward 0 (the transformation's un-exploited
    // state) but cover nonzero starts too.
    decl.init = Expr::literal(rng.chance(0.75) ? 0 : rng.int_in(0, var.high));
    model.modules[var.module].variables.push_back(std::move(decl));
  }

  // One optional formula, usable as a guard conjunct.
  std::string formula_name;
  if (rng.chance(0.5)) {
    FormulaDecl formula;
    formula.name = "f0";
    formula.body = random_state_formula(rng, variables);
    formula_name = formula.name;
    model.formulas.push_back(std::move(formula));
  }

  // Commands: per variable an increment ("exploit") and, usually, a decrement
  // ("patch"), each optionally strengthened by an extra conjunct; plus
  // occasional reset and two-variable commands per module.
  size_t action_counter = 0;
  auto guard_extra = [&](Expr guard) {
    if (rng.chance(0.35)) {
      Expr extra = !formula_name.empty() && rng.chance(0.3)
                       ? Expr::ident(formula_name)
                       : random_comparison(rng, variables);
      guard = guard && extra;
    }
    return guard;
  };
  auto maybe_action = [&]() -> std::string {
    // Unique names keep the model inside the unsynchronized subset.
    if (rng.chance(0.2)) return "act" + std::to_string(action_counter++);
    return "";
  };

  for (const VariableInfo& var : variables) {
    const Expr v = Expr::ident(var.name);
    Command up;
    up.action = maybe_action();
    up.guard = guard_extra(v < Expr::literal(var.high));
    up.rate = random_rate_expr(rng, constant_names, options);
    up.assignments.push_back({var.name, v + Expr::literal(1)});
    model.modules[var.module].commands.push_back(std::move(up));

    if (rng.chance(0.9)) {
      Command down;
      down.action = maybe_action();
      down.guard = guard_extra(v > Expr::literal(0));
      down.rate = random_rate_expr(rng, constant_names, options);
      down.assignments.push_back({var.name, v - Expr::literal(1)});
      model.modules[var.module].commands.push_back(std::move(down));
    }
    if (rng.chance(0.25)) {
      Command reset;
      reset.action = maybe_action();
      reset.guard = v > Expr::literal(0);
      reset.rate = random_rate_expr(rng, constant_names, options);
      reset.assignments.push_back({var.name, Expr::literal(0)});
      model.modules[var.module].commands.push_back(std::move(reset));
    }
  }
  // Two-variable simultaneous updates inside one module.
  for (size_t m = 0; m < module_count; ++m) {
    std::vector<const VariableInfo*> local;
    for (const VariableInfo& var : variables) {
      if (var.module == m) local.push_back(&var);
    }
    if (local.size() >= 2 && rng.chance(0.5)) {
      const VariableInfo& a = *local[0];
      const VariableInfo& b = *local[1];
      Command both;
      both.action = maybe_action();
      both.guard = (Expr::ident(a.name) < Expr::literal(a.high)) &&
                   (Expr::ident(b.name) > Expr::literal(0));
      both.rate = random_rate_expr(rng, constant_names, options);
      both.assignments.push_back({a.name, Expr::ident(a.name) + Expr::literal(1)});
      both.assignments.push_back({b.name, Expr::ident(b.name) - Expr::literal(1)});
      model.modules[m].commands.push_back(std::move(both));
    }
  }

  // Labels over the state space (targets for reachability properties).
  const size_t label_count = 1 + rng.index(options.max_labels);
  for (size_t i = 0; i < label_count; ++i) {
    LabelDecl label;
    label.name = "l" + std::to_string(i);
    label.condition = random_state_formula(rng, variables);
    model.labels.push_back(std::move(label));
  }

  // Reward structures with guard:value items.
  const size_t reward_count = 1 + rng.index(options.max_reward_structs);
  for (size_t i = 0; i < reward_count; ++i) {
    RewardStructDecl rewards;
    rewards.name = "r" + std::to_string(i);
    const size_t item_count = 1 + rng.index(3);
    for (size_t k = 0; k < item_count; ++k) {
      RewardItem item;
      item.guard = rng.chance(0.4) ? Expr::truth() : random_state_formula(rng, variables);
      item.value = Expr::literal(rng.rate(0.1, 5.0));
      rewards.items.push_back(std::move(item));
    }
    model.rewards.push_back(std::move(rewards));
  }

  return model;
}

Architecture random_architecture(uint64_t seed,
                                 const RandomArchitectureOptions& options) {
  Rng rng(seed ^ 0xa5c3u);
  Architecture arch;
  arch.name = "Random architecture " + std::to_string(seed);

  const size_t bus_count = 1 + rng.index(options.max_buses);
  for (size_t i = 0; i < bus_count; ++i) {
    Bus bus;
    bus.name = "B" + std::to_string(i);
    const size_t kind = rng.index(10);
    if (kind < 4) {
      bus.kind = BusKind::kCan;
    } else if (kind < 6) {
      bus.kind = BusKind::kInternet;
    } else if (kind < 8) {
      bus.kind = BusKind::kFlexRay;
      bus.guardian = GuardianSpec{rng.rate(0.1, 2.0), rng.rate(1.0, 52.0)};
    } else {
      bus.kind = BusKind::kEthernet;
      bus.eth_switch = SwitchSpec{rng.rate(0.1, 2.0), rng.rate(1.0, 52.0)};
    }
    arch.buses.push_back(std::move(bus));
  }

  const size_t ecu_count = 2 + rng.index(options.max_ecus - 1);
  for (size_t i = 0; i < ecu_count; ++i) {
    Ecu ecu;
    ecu.name = "E" + std::to_string(i);
    ecu.phi = rng.rate(1.0, 52.0);
    if (rng.chance(0.3)) {
      ecu.asil = static_cast<assess::Asil>(rng.index(5));
    }
    if (options.allow_failures && rng.chance(0.3)) {
      ecu.failure = FailureSpec{rng.rate(0.05, 1.0), rng.rate(12.0, 365.0)};
    }
    // Attach to a random nonempty subset of buses.
    for (size_t b = 0; b < bus_count; ++b) {
      if (b == i % bus_count || rng.chance(0.4)) {
        ecu.interfaces.push_back(Interface{arch.buses[b].name, rng.rate(0.1, 5.0), {}});
      }
    }
    arch.ecus.push_back(std::move(ecu));
  }
  // Every bus needs at least two attached ECUs so it can carry a message.
  for (size_t b = 0; b < bus_count; ++b) {
    size_t attached = 0;
    for (const Ecu& ecu : arch.ecus) {
      if (ecu.find_interface(arch.buses[b].name) != nullptr) ++attached;
    }
    for (size_t i = 0; i < ecu_count && attached < 2; ++i) {
      if (arch.ecus[i].find_interface(arch.buses[b].name) == nullptr) {
        arch.ecus[i].interfaces.push_back(
            Interface{arch.buses[b].name, rng.rate(0.1, 5.0), {}});
        ++attached;
      }
    }
  }

  const size_t message_count = 1 + rng.index(options.max_messages);
  for (size_t i = 0; i < message_count; ++i) {
    const Bus& bus = arch.buses[rng.index(bus_count)];
    std::vector<std::string> attached;
    for (const Ecu& ecu : arch.ecus) {
      if (ecu.find_interface(bus.name) != nullptr) attached.push_back(ecu.name);
    }
    Message message;
    message.name = "msg" + std::to_string(i);
    const size_t sender = rng.index(attached.size());
    message.sender = attached[sender];
    for (size_t r = 0; r < attached.size(); ++r) {
      if (r != sender && (message.receivers.empty() || rng.chance(0.4))) {
        message.receivers.push_back(attached[r]);
      }
    }
    message.buses = {bus.name};
    constexpr Protection kProtections[] = {Protection::kUnencrypted,
                                           Protection::kCmac128, Protection::kAes128};
    message.protection = kProtections[rng.index(3)];
    if (rng.chance(0.3)) message.patch_rate = rng.rate(0.5, 12.0);
    arch.messages.push_back(std::move(message));
  }

  arch.validate();
  return arch;
}

RandomMdp random_mdp(uint64_t seed, const RandomMdpOptions& options) {
  // Scramble with a distinct stream tag so an iteration's MDP is unrelated to
  // its symbolic model and architecture (all three share the iteration seed).
  Rng rng(seed ^ 0x6d64705f72616e64ULL);  // "mdp_rand"
  const size_t states = 2 + rng.index(std::max<size_t>(1, options.max_states - 1));

  RandomMdp out;
  mdp::Mdp& model = out.model;
  model.state_offsets.push_back(0);
  std::vector<std::tuple<size_t, size_t, double>> entries;  // (row, column, p)
  for (size_t s = 0; s < states; ++s) {
    const size_t action_count = 1 + rng.index(options.max_actions);
    for (size_t a = 0; a < action_count; ++a) {
      const size_t row = model.state_of_row.size();
      model.state_of_row.push_back(static_cast<uint32_t>(s));
      model.action_labels.push_back("a" + std::to_string(a));
      // Integer weights over a random successor multiset; CsrBuilder sums
      // duplicate targets, and w/W ratios keep each row sum exact.
      const size_t branches = 1 + rng.index(options.max_branches);
      std::vector<size_t> targets(branches);
      std::vector<int32_t> weights(branches);
      int32_t total = 0;
      for (size_t b = 0; b < branches; ++b) {
        targets[b] = rng.index(states);
        weights[b] = rng.int_in(1, 9);
        total += weights[b];
      }
      for (size_t b = 0; b < branches; ++b) {
        entries.emplace_back(row, targets[b],
                             static_cast<double>(weights[b]) / total);
      }
    }
    model.state_offsets.push_back(static_cast<uint32_t>(model.state_of_row.size()));
  }
  linalg::CsrBuilder builder(model.state_of_row.size(), states);
  for (const auto& [row, column, probability] : entries) {
    builder.add(row, column, probability);
  }
  model.transitions = std::move(builder).build();
  model.validate();

  out.target.assign(states, false);
  for (size_t s = 1; s < states; ++s) {
    if (rng.chance(options.target_chance)) out.target[s] = true;
  }
  // Always at least one target, never the initial state (so reachability is
  // a non-trivial question from state 0).
  if (std::find(out.target.begin(), out.target.end(), true) == out.target.end()) {
    out.target[1 + rng.index(states - 1)] = true;
  }
  return out;
}

}  // namespace autosec::testing
