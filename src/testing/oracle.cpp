#include "testing/oracle.hpp"

#include <cmath>
#include <stdexcept>

#include "ctmc/transient.hpp"
#include "linalg/dense.hpp"

namespace autosec::testing {

namespace {

using linalg::DenseMatrix;

void check_size(const ctmc::Ctmc& chain, const OracleOptions& options) {
  if (chain.state_count() > options.max_states) {
    throw std::invalid_argument("oracle: chain exceeds the dense-state limit");
  }
}

/// Dense generator Q = R − diag(E).
DenseMatrix dense_generator(const ctmc::Ctmc& chain) {
  DenseMatrix q = DenseMatrix::from_csr(chain.rates());
  for (size_t i = 0; i < chain.state_count(); ++i) {
    q.at(i, i) -= chain.exit_rate(i);
  }
  return q;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double mask_dot(const std::vector<double>& distribution, const std::vector<bool>& mask) {
  double sum = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    if (mask[i]) sum += distribution[i];
  }
  return sum;
}

}  // namespace

std::vector<double> oracle_transient(const ctmc::Ctmc& chain,
                                     const std::vector<double>& initial, double t,
                                     const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_transient");
  if (t < 0.0) throw std::invalid_argument("oracle_transient: negative time");
  if (t == 0.0 || chain.state_count() == 0) return initial;
  const DenseMatrix propagator = linalg::dense_expm(dense_generator(chain).scaled(t));
  return propagator.left_multiply(initial);
}

double oracle_transient_probability(const ctmc::Ctmc& chain,
                                    const std::vector<double>& initial,
                                    const std::vector<bool>& target, double t,
                                    const OracleOptions& options) {
  return mask_dot(oracle_transient(chain, initial, t, options), target);
}

double oracle_bounded_reachability(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<bool>& allowed,
                                   const std::vector<bool>& target, double t,
                                   const OracleOptions& options) {
  check_size(chain, options);
  const size_t n = chain.state_count();
  // Same CSL semantics as ctmc::bounded_reachability: target states absorb as
  // success, states outside allowed ∪ target absorb as failure; already-target
  // initial mass counts fully.
  std::vector<bool> absorbing(n, false);
  for (size_t i = 0; i < n; ++i) {
    absorbing[i] = target[i] || (!allowed[i] && !target[i]);
  }
  const ctmc::Ctmc modified = chain.with_absorbing(absorbing);
  return mask_dot(oracle_transient(modified, initial, t, options), target);
}

std::vector<double> oracle_steady_state(const ctmc::Ctmc& chain,
                                        const std::vector<double>& initial,
                                        const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_steady_state");
  const size_t n = chain.state_count();
  if (n == 0) return initial;
  if (chain.max_exit_rate() == 0.0) return initial;  // every state absorbing

  const double q = chain.default_uniformization_rate();
  DenseMatrix power = DenseMatrix::from_csr(chain.uniformized(q));
  std::vector<double> current = power.left_multiply(initial);
  // π · P^{2^k} for growing k; each squaring doubles the horizon, so slow
  // mixing costs iterations logarithmically. Repeated squaring also doubles
  // the accumulated roundoff every step, so once the distribution has settled
  // (small delta) any *growth* in delta marks the roundoff regime — stop and
  // keep the best iterate rather than squaring the matrix into garbage.
  double previous_delta = std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < 64; ++iteration) {
    power = power.multiply(power);
    std::vector<double> next = power.left_multiply(initial);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta = std::max(delta, std::fabs(next[i] - current[i]));
    if (delta < options.steady_tolerance) {
      current = std::move(next);
      break;
    }
    if (delta < 1e-8 && delta >= previous_delta) break;  // roundoff floor reached
    current = std::move(next);
    previous_delta = delta;
  }
  // Clean up the tiny negatives dense squaring can leave and renormalize to
  // the initial mass.
  double mass = 0.0;
  double target_mass = 0.0;
  for (const double v : initial) target_mass += v;
  for (double& v : current) {
    if (v < 0.0) v = 0.0;
    mass += v;
  }
  if (mass > 0.0) {
    for (double& v : current) v *= target_mass / mass;
  }
  return current;
}

double oracle_cumulative_reward(const ctmc::Ctmc& chain,
                                const std::vector<double>& initial,
                                const std::vector<double>& state_rewards, double t,
                                const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_cumulative_reward");
  if (t < 0.0) throw std::invalid_argument("oracle_cumulative_reward: negative time");
  const size_t n = chain.state_count();
  if (t == 0.0 || n == 0) return 0.0;
  if (state_rewards.size() != n) {
    throw std::invalid_argument("oracle_cumulative_reward: reward size mismatch");
  }
  // Van Loan block trick: exp([[Q, r],[0, 0]] t) has ∫₀ᵗ e^{Qs} r ds as its
  // top-right column, so the expectation is one augmented expm away.
  DenseMatrix augmented(n + 1, n + 1);
  const DenseMatrix generator = dense_generator(chain);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) augmented.at(i, j) = generator.at(i, j) * t;
    augmented.at(i, n) = state_rewards[i] * t;
  }
  const DenseMatrix block = linalg::dense_expm(augmented);
  double expectation = 0.0;
  for (size_t i = 0; i < n; ++i) expectation += initial[i] * block.at(i, n);
  return expectation;
}

double oracle_instantaneous_reward(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<double>& state_rewards, double t,
                                   const OracleOptions& options) {
  return dot(oracle_transient(chain, initial, t, options), state_rewards);
}

double oracle_steady_reward(const ctmc::Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<double>& state_rewards,
                            const OracleOptions& options) {
  return dot(oracle_steady_state(chain, initial, options), state_rewards);
}

}  // namespace autosec::testing
