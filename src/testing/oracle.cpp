#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "ctmc/transient.hpp"
#include "linalg/dense.hpp"

namespace autosec::testing {

namespace {

using linalg::DenseMatrix;

void check_size(const ctmc::Ctmc& chain, const OracleOptions& options) {
  if (chain.state_count() > options.max_states) {
    throw std::invalid_argument("oracle: chain exceeds the dense-state limit");
  }
}

/// Dense generator Q = R − diag(E).
DenseMatrix dense_generator(const ctmc::Ctmc& chain) {
  DenseMatrix q = DenseMatrix::from_csr(chain.rates());
  for (size_t i = 0; i < chain.state_count(); ++i) {
    q.at(i, i) -= chain.exit_rate(i);
  }
  return q;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double mask_dot(const std::vector<double>& distribution, const std::vector<bool>& mask) {
  double sum = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    if (mask[i]) sum += distribution[i];
  }
  return sum;
}

}  // namespace

std::vector<double> oracle_transient(const ctmc::Ctmc& chain,
                                     const std::vector<double>& initial, double t,
                                     const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_transient");
  if (t < 0.0) throw std::invalid_argument("oracle_transient: negative time");
  if (t == 0.0 || chain.state_count() == 0) return initial;
  const DenseMatrix propagator = linalg::dense_expm(dense_generator(chain).scaled(t));
  return propagator.left_multiply(initial);
}

double oracle_transient_probability(const ctmc::Ctmc& chain,
                                    const std::vector<double>& initial,
                                    const std::vector<bool>& target, double t,
                                    const OracleOptions& options) {
  return mask_dot(oracle_transient(chain, initial, t, options), target);
}

double oracle_bounded_reachability(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<bool>& allowed,
                                   const std::vector<bool>& target, double t,
                                   const OracleOptions& options) {
  check_size(chain, options);
  const size_t n = chain.state_count();
  // Same CSL semantics as ctmc::bounded_reachability: target states absorb as
  // success, states outside allowed ∪ target absorb as failure; already-target
  // initial mass counts fully.
  std::vector<bool> absorbing(n, false);
  for (size_t i = 0; i < n; ++i) {
    absorbing[i] = target[i] || (!allowed[i] && !target[i]);
  }
  const ctmc::Ctmc modified = chain.with_absorbing(absorbing);
  return mask_dot(oracle_transient(modified, initial, t, options), target);
}

std::vector<double> oracle_steady_state(const ctmc::Ctmc& chain,
                                        const std::vector<double>& initial,
                                        const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_steady_state");
  const size_t n = chain.state_count();
  if (n == 0) return initial;
  if (chain.max_exit_rate() == 0.0) return initial;  // every state absorbing

  const double q = chain.default_uniformization_rate();
  DenseMatrix power = DenseMatrix::from_csr(chain.uniformized(q));
  std::vector<double> current = power.left_multiply(initial);
  // π · P^{2^k} for growing k; each squaring doubles the horizon, so slow
  // mixing costs iterations logarithmically. Repeated squaring also doubles
  // the accumulated roundoff every step, so once the distribution has settled
  // (small delta) any *growth* in delta marks the roundoff regime — stop and
  // keep the best iterate rather than squaring the matrix into garbage.
  double previous_delta = std::numeric_limits<double>::infinity();
  for (int iteration = 0; iteration < 64; ++iteration) {
    power = power.multiply(power);
    std::vector<double> next = power.left_multiply(initial);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta = std::max(delta, std::fabs(next[i] - current[i]));
    if (delta < options.steady_tolerance) {
      current = std::move(next);
      break;
    }
    if (delta < 1e-8 && delta >= previous_delta) break;  // roundoff floor reached
    current = std::move(next);
    previous_delta = delta;
  }
  // Clean up the tiny negatives dense squaring can leave and renormalize to
  // the initial mass.
  double mass = 0.0;
  double target_mass = 0.0;
  for (const double v : initial) target_mass += v;
  for (double& v : current) {
    if (v < 0.0) v = 0.0;
    mass += v;
  }
  if (mass > 0.0) {
    for (double& v : current) v *= target_mass / mass;
  }
  return current;
}

double oracle_cumulative_reward(const ctmc::Ctmc& chain,
                                const std::vector<double>& initial,
                                const std::vector<double>& state_rewards, double t,
                                const OracleOptions& options) {
  check_size(chain, options);
  ctmc::check_distribution(chain.state_count(), initial, "oracle_cumulative_reward");
  if (t < 0.0) throw std::invalid_argument("oracle_cumulative_reward: negative time");
  const size_t n = chain.state_count();
  if (t == 0.0 || n == 0) return 0.0;
  if (state_rewards.size() != n) {
    throw std::invalid_argument("oracle_cumulative_reward: reward size mismatch");
  }
  // Van Loan block trick: exp([[Q, r],[0, 0]] t) has ∫₀ᵗ e^{Qs} r ds as its
  // top-right column, so the expectation is one augmented expm away.
  DenseMatrix augmented(n + 1, n + 1);
  const DenseMatrix generator = dense_generator(chain);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) augmented.at(i, j) = generator.at(i, j) * t;
    augmented.at(i, n) = state_rewards[i] * t;
  }
  const DenseMatrix block = linalg::dense_expm(augmented);
  double expectation = 0.0;
  for (size_t i = 0; i < n; ++i) expectation += initial[i] * block.at(i, n);
  return expectation;
}

double oracle_instantaneous_reward(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<double>& state_rewards, double t,
                                   const OracleOptions& options) {
  return dot(oracle_transient(chain, initial, t, options), state_rewards);
}

double oracle_steady_reward(const ctmc::Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<double>& state_rewards,
                            const OracleOptions& options) {
  return dot(oracle_steady_state(chain, initial, options), state_rewards);
}

std::vector<double> oracle_mdp_reachability(const mdp::Mdp& mdp,
                                            const std::vector<bool>& target,
                                            bool maximize,
                                            const OracleOptions& options) {
  mdp.validate();
  const size_t n = mdp.state_count();
  if (n > options.max_states) {
    throw std::invalid_argument("oracle_mdp_reachability: MDP exceeds the state limit");
  }
  if (target.size() != n) {
    throw std::invalid_argument("oracle_mdp_reachability: target size mismatch");
  }

  // Count the memoryless schedulers (product of per-state action counts) and
  // refuse un-enumerable spaces up front.
  constexpr size_t kMaxSchedulers = size_t{1} << 17;
  size_t scheduler_count = 1;
  for (size_t s = 0; s < n; ++s) {
    const auto [first, last] = mdp.actions_of(static_cast<uint32_t>(s));
    const size_t actions = last - first;
    if (actions == 0 || scheduler_count > kMaxSchedulers / actions) {
      throw std::invalid_argument(
          "oracle_mdp_reachability: scheduler space too large to enumerate");
    }
    scheduler_count *= actions;
  }

  std::vector<double> best(n, maximize ? 0.0 : 1.0);
  std::vector<size_t> choice(n, 0);  // per-state action index (odometer)
  for (size_t scheduler = 0; scheduler < scheduler_count; ++scheduler) {
    // BFS backward from the target over the induced DTMC's edges: `reach[s]`
    // iff s can reach a target state at all under this scheduler.
    std::vector<std::vector<size_t>> predecessors(n);
    for (size_t s = 0; s < n; ++s) {
      if (target[s]) continue;  // target states are absorbing for F target
      const size_t row = mdp.state_offsets[s] + choice[s];
      for (const size_t to : mdp.transitions.row_columns(row)) {
        predecessors[to].push_back(s);
      }
    }
    std::vector<bool> reach = target;
    std::vector<size_t> frontier;
    for (size_t s = 0; s < n; ++s) {
      if (target[s]) frontier.push_back(s);
    }
    while (!frontier.empty()) {
      const size_t s = frontier.back();
      frontier.pop_back();
      for (const size_t from : predecessors[s]) {
        if (!reach[from]) {
          reach[from] = true;
          frontier.push_back(from);
        }
      }
    }

    // Unknown states U = reach \ target. With the target absorbing, every
    // state of U is transient, so (I − P_UU) is nonsingular and
    // x = (I − P_UU)⁻¹ · P_U→target · 1 is the reachability probability.
    std::vector<size_t> unknown;
    std::vector<size_t> index_of(n, n);
    for (size_t s = 0; s < n; ++s) {
      if (reach[s] && !target[s]) {
        index_of[s] = unknown.size();
        unknown.push_back(s);
      }
    }
    std::vector<double> values(n, 0.0);
    for (size_t s = 0; s < n; ++s) {
      if (target[s]) values[s] = 1.0;
    }
    if (!unknown.empty()) {
      const size_t u = unknown.size();
      DenseMatrix system(u, u);
      std::vector<double> rhs(u, 0.0);
      for (size_t i = 0; i < u; ++i) {
        system.at(i, i) = 1.0;
        const size_t row = mdp.state_offsets[unknown[i]] + choice[unknown[i]];
        const auto cols = mdp.transitions.row_columns(row);
        const auto vals = mdp.transitions.row_values(row);
        for (size_t k = 0; k < cols.size(); ++k) {
          const size_t to = cols[k];
          if (target[to]) {
            rhs[i] += vals[k];
          } else if (index_of[to] < n) {
            system.at(i, index_of[to]) -= vals[k];
          }  // else: `to` cannot reach the target, contributes 0
        }
      }
      const std::vector<double> solved = linalg::dense_solve(std::move(system), rhs);
      for (size_t i = 0; i < u; ++i) values[unknown[i]] = solved[i];
    }

    for (size_t s = 0; s < n; ++s) {
      best[s] = maximize ? std::max(best[s], values[s]) : std::min(best[s], values[s]);
    }

    // Advance the odometer to the next scheduler.
    for (size_t s = 0; s < n; ++s) {
      const auto [first, last] = mdp.actions_of(static_cast<uint32_t>(s));
      if (++choice[s] < static_cast<size_t>(last - first)) break;
      choice[s] = 0;
    }
  }
  return best;
}

}  // namespace autosec::testing
