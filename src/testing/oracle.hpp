// Independent dense oracle for CTMC measures, used by the differential
// harness to cross-check the sparse uniformization/Krylov engine the way
// Storm validates its engines against each other. Every measure is computed
// through a different numerical route than the engine takes:
//
//   transient          π(t) = π(0) · e^{Qt}        (dense scaling-and-squaring
//                                                   matrix exponential)
//   cumulative reward  π(0) · [∫₀ᵗ e^{Qs} ds] · r  (Van Loan augmented-matrix
//                                                   exponential: the integral
//                                                   is the top-right block of
//                                                   exp([[Q, r],[0, 0]] t))
//   steady state       π(0) · P^{2^k}, P = I + Q/q (repeated dense squaring of
//                                                   the uniformized DTMC until
//                                                   the distribution is a
//                                                   fixpoint; aperiodicity is
//                                                   guaranteed by q strictly
//                                                   above every exit rate)
//
// All of it is O(n^3)-dense and only feasible for small chains; the harness
// keeps generated models at or below a couple hundred states.
#pragma once

#include <vector>

#include "ctmc/ctmc.hpp"
#include "mdp/mdp.hpp"

namespace autosec::testing {

struct OracleOptions {
  /// Refuse (by throwing std::invalid_argument) chains above this many
  /// states, as a guard against accidentally cubing a large state space.
  size_t max_states = 512;
  /// Fixpoint threshold for the steady-state squaring iteration.
  double steady_tolerance = 1e-12;
};

/// Distribution over states at time t: π(0)·e^{Qt}.
std::vector<double> oracle_transient(const ctmc::Ctmc& chain,
                                     const std::vector<double>& initial, double t,
                                     const OracleOptions& options = {});

/// Probability of being in a `target` state at time exactly t.
double oracle_transient_probability(const ctmc::Ctmc& chain,
                                    const std::vector<double>& initial,
                                    const std::vector<bool>& target, double t,
                                    const OracleOptions& options = {});

/// Time-bounded reachability Pr[ reach target within t through allowed ],
/// via the same absorbing-chain construction as the engine but dense-expm
/// numerics.
double oracle_bounded_reachability(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<bool>& allowed,
                                   const std::vector<bool>& target, double t,
                                   const OracleOptions& options = {});

/// Long-run distribution from `initial`, by squaring the uniformized DTMC
/// until π is a fixpoint. Handles reducible chains (the limit of P^k exists
/// for any aperiodic DTMC, reducible or not).
std::vector<double> oracle_steady_state(const ctmc::Ctmc& chain,
                                        const std::vector<double>& initial,
                                        const OracleOptions& options = {});

/// Expected accumulated state reward over [0, t] via the augmented-matrix
/// exponential.
double oracle_cumulative_reward(const ctmc::Ctmc& chain,
                                const std::vector<double>& initial,
                                const std::vector<double>& state_rewards, double t,
                                const OracleOptions& options = {});

/// Expected instantaneous reward at time t: π(t)·r.
double oracle_instantaneous_reward(const ctmc::Ctmc& chain,
                                   const std::vector<double>& initial,
                                   const std::vector<double>& state_rewards, double t,
                                   const OracleOptions& options = {});

/// Long-run average reward: π∞·r.
double oracle_steady_reward(const ctmc::Ctmc& chain, const std::vector<double>& initial,
                            const std::vector<double>& state_rewards,
                            const OracleOptions& options = {});

/// Per-state optimal unbounded reachability probabilities of an MDP, computed
/// the slowest honest way: enumerate every memoryless scheduler (a uniformly
/// optimal one exists for this objective), solve each induced DTMC's
/// reachability system with dense Gaussian elimination, and take the
/// elementwise max (maximize) or min. The scheduler count — the product of
/// per-state action counts — must stay at or below 1<<17, or the oracle
/// refuses by throwing std::invalid_argument. Cross-checks value iteration
/// through a route that shares neither the fixpoint iteration nor the
/// qualitative precomputation.
std::vector<double> oracle_mdp_reachability(const mdp::Mdp& mdp,
                                            const std::vector<bool>& target,
                                            bool maximize,
                                            const OracleOptions& options = {});

}  // namespace autosec::testing
