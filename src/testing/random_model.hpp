// Seeded random generators for differential testing: PRISM-subset symbolic
// models (bounded variables, guarded commands with rates, labels, reward
// structures) and .arch architectures. Everything is drawn from one
// std::mt19937_64 stream, so a seed fully determines the output — a failing
// differential iteration is reproduced by re-running its seed.
//
// The model distribution is biased toward the shape of the automotive
// transformation's output (counter variables moved up and down by guarded
// exploit/patch-style commands) but also covers multi-assignment updates,
// reset commands, action labels, constants referenced from rates, formulas
// referenced from guards, and dead (unsatisfiable-guard) commands. Sizes are
// kept small enough for the dense oracle (state_budget caps the variable
// range product).
#pragma once

#include <cstdint>
#include <vector>

#include "automotive/architecture.hpp"
#include "mdp/mdp.hpp"
#include "symbolic/model.hpp"

namespace autosec::testing {

struct RandomModelOptions {
  size_t max_modules = 3;
  size_t max_variables = 5;  ///< across all modules (at least 1 is generated)
  int32_t max_range = 2;     ///< variable domain is [0 .. high], high <= this
  size_t max_constants = 3;
  size_t max_labels = 3;
  size_t max_reward_structs = 2;
  /// Cap on the product of variable domain sizes (the upper bound of the
  /// reachable state count); keeps the dense oracle feasible.
  size_t state_budget = 144;
  double min_rate = 0.05;
  double max_rate = 25.0;
};

/// Generate a valid (compilable, explorable) random model. Rates are
/// quantized to 6 significant digits so every literal round-trips exactly
/// through the writer and parser.
symbolic::Model random_model(uint64_t seed, const RandomModelOptions& options = {});

struct RandomArchitectureOptions {
  size_t max_buses = 2;
  size_t max_ecus = 3;
  size_t max_messages = 2;
  /// Attach FailureSpecs to some ECUs (exercises the reliability modules).
  bool allow_failures = true;
};

/// Generate a valid (validate()-clean) random architecture whose transformed
/// models stay small. All rates are quantized to 6 significant digits, so
/// write_architecture/parse_architecture round-trips are exact.
automotive::Architecture random_architecture(
    uint64_t seed, const RandomArchitectureOptions& options = {});

/// Sizes are kept tiny on purpose: the differential oracle enumerates every
/// memoryless scheduler, so the strategy count (product of per-state action
/// counts) must stay enumerable.
struct RandomMdpOptions {
  size_t max_states = 8;    ///< at least 2 are generated
  size_t max_actions = 3;   ///< rows per state, at least 1
  size_t max_branches = 3;  ///< successors per row, at least 1
  /// Probability of marking each non-initial state as a target (at least one
  /// state is always a target).
  double target_chance = 0.25;
};

struct RandomMdp {
  mdp::Mdp model;
  std::vector<bool> target;
};

/// Generate a validate()-clean flattened MDP plus a nonempty target set.
/// Branch probabilities are small integer ratios w/W, so row sums are exact
/// to well within the Mdp::validate() tolerance.
RandomMdp random_mdp(uint64_t seed, const RandomMdpOptions& options = {});

}  // namespace autosec::testing
