#include "testing/differential.hpp"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>
#include <utility>

#include "automotive/archfile.hpp"
#include "automotive/transform.hpp"
#include "csl/checker.hpp"
#include "csl/checkpoint.hpp"
#include "csl/lumped.hpp"
#include "csl/session.hpp"
#include "ctmc/rewards.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sell_matrix.hpp"
#include "mdp/value_iteration.hpp"
#include "symbolic/parser.hpp"
#include "symbolic/writer.hpp"
#include "testing/oracle.hpp"
#include "util/parallel.hpp"

namespace autosec::testing {

namespace {

using automotive::Architecture;
using symbolic::Model;
using symbolic::StateSpace;

/// Per-iteration fixed context plus the failure-recording plumbing.
class Harness {
 public:
  Harness(const DifferentialOptions& options, DifferentialReport& report)
      : options_(options), report_(report) {}

  bool overflowed() const { return report_.failures.size() >= options_.max_failures; }

  void record(const std::string& check, uint64_t seed, const std::string& what,
              double error) {
    record(check, seed, what, error, options_.tolerance);
  }

  void record(const std::string& check, uint64_t seed, const std::string& what,
              double error, double tolerance) {
    CheckOutcome& outcome = report_.checks[check];
    ++outcome.runs;
    outcome.max_error = std::max(outcome.max_error, error);
    if (error > tolerance || std::isnan(error)) {
      ++outcome.failures;
      if (!overflowed()) {
        std::ostringstream os;
        os << "[seed " << seed << "] " << check << ": " << what << " (error "
           << error << " > " << tolerance << ")";
        report_.failures.push_back(os.str());
      }
    }
  }

  /// A comparison that could not be performed because a solver honestly
  /// reported non-convergence: counted, never a failure.
  void record_skip(const std::string& check) { ++report_.checks[check].skips; }

  /// Compare two scalars; +inf agreeing with +inf is a pass. The recorded
  /// error is |a−b| / max(1, |a|, |b|): absolute for probability-sized
  /// values, relative for large expected rewards (where 1e-12-per-sweep
  /// solver stops legitimately leave absolute residues above the tolerance).
  void compare(const std::string& check, uint64_t seed, const std::string& what,
               double engine, double reference, double tolerance) {
    if (std::isinf(engine) && std::isinf(reference) && engine == reference) {
      record(check, seed, what, 0.0, tolerance);
      return;
    }
    std::ostringstream os;
    os << what << ": " << engine << " vs " << reference;
    const double scale =
        std::max(1.0, std::max(std::fabs(engine), std::fabs(reference)));
    record(check, seed, os.str(), std::fabs(engine - reference) / scale, tolerance);
  }

  void compare(const std::string& check, uint64_t seed, const std::string& what,
               double engine, double reference) {
    compare(check, seed, what, engine, reference, options_.tolerance);
  }

  /// Exact (bitwise) agreement: any difference is reported as error 1.
  void compare_exact(const std::string& check, uint64_t seed, const std::string& what,
                     double a, double b) {
    const bool equal = (a == b) || (std::isnan(a) && std::isnan(b));
    std::ostringstream os;
    os << what << ": " << a << " vs " << b;
    record(check, seed, os.str(), equal ? 0.0 : 1.0);
  }

  void record_pass_fail(const std::string& check, uint64_t seed,
                        const std::string& what, bool passed) {
    record(check, seed, what, passed ? 0.0 : 1.0);
  }

  const DifferentialOptions& options_;
  DifferentialReport& report_;
};

double infinity_norm_difference(const std::vector<double>& a,
                                const std::vector<double>& b) {
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

bool csr_equal(const linalg::CsrMatrix& a, const linalg::CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nonzeros() != b.nonzeros()) {
    return false;
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_columns(r), bc = b.row_columns(r);
    const auto av = a.row_values(r), bv = b.row_values(r);
    if (ac.size() != bc.size()) return false;
    for (size_t k = 0; k < ac.size(); ++k) {
      if (ac[k] != bc[k] || av[k] != bv[k]) return false;
    }
  }
  return true;
}

/// The horizon of this iteration's time-bounded checks, as a number and as
/// exact property-source text.
std::pair<double, std::string> pick_horizon(uint64_t seed) {
  switch (seed % 3) {
    case 0: return {0.25, "0.25"};
    case 1: return {1.0, "1"};
    default: return {3.0, "3"};
  }
}

/// Pr[F target] = 1 from the initial distribution iff, with target made
/// absorbing, every state reachable from the initial mass can still reach a
/// target state (finite-chain almost-sure reachability). This is an
/// independent reimplementation of the engine's Prob1 precomputation — a
/// forward walk from the initial mass rather than two backward closures —
/// used to differentially check the engine's finite/infinite classification
/// of R{..}=?[F ..].
bool almost_surely_reaches(const ctmc::Ctmc& chain, const std::vector<double>& initial,
                           const std::vector<bool>& target) {
  const size_t n = chain.state_count();
  const linalg::CsrMatrix& rates = chain.rates();
  // Backward reachability of target over the target-absorbed chain.
  std::vector<std::vector<uint32_t>> predecessors(n);
  for (size_t row = 0; row < n; ++row) {
    if (target[row]) continue;  // absorbed: outgoing edges removed
    const auto columns = rates.row_columns(row);
    const auto values = rates.row_values(row);
    for (size_t k = 0; k < columns.size(); ++k) {
      if (values[k] > 0.0 && columns[k] != row) {
        predecessors[columns[k]].push_back(static_cast<uint32_t>(row));
      }
    }
  }
  std::vector<bool> can_reach(n, false);
  std::vector<uint32_t> stack;
  for (size_t i = 0; i < n; ++i) {
    if (target[i]) {
      can_reach[i] = true;
      stack.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!stack.empty()) {
    const uint32_t state = stack.back();
    stack.pop_back();
    for (const uint32_t pred : predecessors[state]) {
      if (!can_reach[pred]) {
        can_reach[pred] = true;
        stack.push_back(pred);
      }
    }
  }
  // Forward sweep from the initial mass: a state that cannot reach target is
  // a witness that the reach probability is below 1.
  std::vector<bool> visited(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (initial[i] > 0.0 && !visited[i]) {
      visited[i] = true;
      stack.push_back(static_cast<uint32_t>(i));
    }
  }
  while (!stack.empty()) {
    const uint32_t state = stack.back();
    stack.pop_back();
    if (!can_reach[state]) return false;
    if (target[state]) continue;
    const auto columns = rates.row_columns(state);
    const auto values = rates.row_values(state);
    for (size_t k = 0; k < columns.size(); ++k) {
      if (values[k] > 0.0 && !visited[columns[k]]) {
        visited[columns[k]] = true;
        stack.push_back(columns[k]);
      }
    }
  }
  return true;
}

/// Property texts exercised on a model: unbounded (the solver-differential
/// set) and bounded (oracle/lumping/determinism sets) variants over its
/// labels and reward structures.
struct PropertySet {
  std::vector<std::string> unbounded;
  std::vector<std::string> bounded;
};

PropertySet build_properties(const Model& model, const std::string& t_text) {
  PropertySet set;
  size_t labels = 0;
  for (const symbolic::LabelDecl& label : model.labels) {
    if (++labels > 2) break;
    const std::string quoted = "\"" + label.name + "\"";
    set.unbounded.push_back("P=? [ F " + quoted + " ]");
    set.unbounded.push_back("S=? [ " + quoted + " ]");
    set.bounded.push_back("P=? [ F<=" + t_text + " " + quoted + " ]");
  }
  size_t rewards = 0;
  for (const symbolic::RewardStructDecl& reward : model.rewards) {
    if (++rewards > 1) break;
    const std::string quoted = "\"" + reward.name + "\"";
    set.unbounded.push_back("R{" + quoted + "}=? [ S ]");
    if (!model.labels.empty()) {
      set.unbounded.push_back("R{" + quoted + "}=? [ F \"" + model.labels[0].name +
                              "\" ]");
    }
    set.bounded.push_back("R{" + quoted + "}=? [ C<=" + t_text + " ]");
    set.bounded.push_back("R{" + quoted + "}=? [ I=" + t_text + " ]");
  }
  return set;
}

/// All differential families on one explored model.
void check_model(Harness& harness, uint64_t seed, const std::string& origin,
                 const Model& model) {
  const DifferentialOptions& options = harness.options_;
  auto compiled = std::make_shared<const symbolic::CompiledModel>(symbolic::compile(model));
  auto space = std::make_shared<const StateSpace>(symbolic::explore(compiled));
  ++harness.report_.models_checked;

  const ctmc::Ctmc chain = space->to_ctmc();
  const std::vector<double> initial = space->initial_distribution();
  const auto [t, t_text] = pick_horizon(seed);
  const PropertySet properties = build_properties(model, t_text);
  const std::string tag = origin + " ";

  // --- exact Prob1 cross-check: the engine classifies R{..}=?[F ..] as
  // finite/infinite via a backward graph precomputation; re-derive the same
  // answer with an independent forward walk and insist they agree.
  if (options.check_oracle && !model.labels.empty() && !model.rewards.empty()) {
    const bool well_posed =
        almost_surely_reaches(chain, initial, space->label_mask(model.labels[0].name));
    const csl::Checker checker(space);
    const double value = checker.check("R{\"" + model.rewards[0].name + "\"}=? [ F \"" +
                                       model.labels[0].name + "\" ]");
    harness.record_pass_fail(
        "oracle.reward_finiteness", seed,
        tag + "R[F] " + (well_posed ? "finite" : "infinite") + " but engine says " +
            (std::isinf(value) ? "infinite" : "finite"),
        std::isinf(value) == !well_posed);
  }

  // --- (a) engine vs dense oracle.
  if (options.check_oracle) {
    if (space->state_count() <= options.oracle_max_states) {
      OracleOptions oracle_options;
      oracle_options.max_states = options.oracle_max_states;

      harness.record(
          "oracle.transient", seed, tag + "transient distribution at t=" + t_text,
          infinity_norm_difference(ctmc::transient_distribution(chain, initial, t),
                                   oracle_transient(chain, initial, t, oracle_options)));
      harness.record(
          "oracle.steady_state", seed, tag + "long-run distribution",
          infinity_norm_difference(
              ctmc::steady_state(chain, initial).distribution,
              oracle_steady_state(chain, initial, oracle_options)));
      if (!model.rewards.empty()) {
        const std::vector<double> rewards = space->reward_vector(model.rewards[0].name);
        harness.compare(
            "oracle.cumulative_reward", seed, tag + "R[C<=" + t_text + "]",
            ctmc::expected_cumulative_reward(chain, initial, rewards, t),
            oracle_cumulative_reward(chain, initial, rewards, t, oracle_options));
        harness.compare(
            "oracle.instantaneous_reward", seed, tag + "R[I=" + t_text + "]",
            ctmc::expected_instantaneous_reward(chain, initial, rewards, t),
            oracle_instantaneous_reward(chain, initial, rewards, t, oracle_options));
      }
      if (!model.labels.empty()) {
        const std::vector<bool> target = space->label_mask(model.labels[0].name);
        const std::vector<bool> allowed(space->state_count(), true);
        harness.compare(
            "oracle.bounded_reachability", seed,
            tag + "P[F<=" + t_text + " \"" + model.labels[0].name + "\"]",
            ctmc::bounded_reachability(chain, initial, allowed, target, t),
            oracle_bounded_reachability(chain, initial, allowed, target, t,
                                        oracle_options));
      }
    } else {
      ++harness.report_.oracle_skipped_large;
    }
  }

  // --- (b) Krylov-first vs pure Gauss-Seidel on the unbounded properties.
  if (options.check_solvers) {
    csl::CheckerOptions krylov;
    krylov.plan.method = linalg::FixpointMethod::kAuto;
    csl::CheckerOptions gauss_seidel;
    gauss_seidel.plan.method = linalg::FixpointMethod::kGaussSeidel;
    const csl::Checker krylov_checker(space, krylov);
    const csl::Checker gs_checker(space, gauss_seidel);
    for (const std::string& text : properties.unbounded) {
      try {
        harness.compare("solver.krylov_vs_gauss_seidel", seed, tag + text,
                        krylov_checker.check(text), gs_checker.check(text),
                        options.solver_tolerance);
      } catch (const csl::PropertyError& error) {
        // Pure Gauss-Seidel legitimately runs out of sweeps on very stiff
        // systems (escape probability near the roundoff floor). A reported
        // non-convergence is not a silent disagreement — count it as a skip
        // and let anything else propagate.
        if (std::string(error.what()).find("converge") == std::string::npos) throw;
        harness.record_skip("solver.krylov_vs_gauss_seidel");
      }
    }
  }

  // --- (b') solve-kernel cross-checks. Three axes with three distinct
  // agreement contracts:
  //   blocked vs csr      bit-exact — the SELL kernel predicates on true row
  //                       lengths and sums each row in the same column order;
  //   colored vs direct   solver tolerance — the multicolor sweep visits rows
  //                       in color order, a genuinely different iteration;
  //   rcm vs natural      oracle tolerance — the permuted matrix sums rows
  //                       in a different order (roundoff-scale drift only).
  if (options.check_kernels) {
    csl::CheckerOptions blocked_options;
    blocked_options.plan.layout = linalg::MatrixLayout::kBlocked;
    csl::CheckerOptions csr_options;
    csr_options.plan.layout = linalg::MatrixLayout::kCsr;
    const csl::Checker blocked_checker(space, blocked_options);
    const csl::Checker csr_checker(space, csr_options);
    for (const std::string& text : properties.bounded) {
      harness.compare_exact("solver.blocked_vs_csr", seed, tag + text,
                            blocked_checker.check(text), csr_checker.check(text));
    }

    csl::CheckerOptions colored_options;
    colored_options.plan.method = linalg::FixpointMethod::kGaussSeidel;
    colored_options.plan.gs_ordering = linalg::GsOrdering::kColored;
    csl::CheckerOptions direct_options;
    direct_options.plan.method = linalg::FixpointMethod::kGaussSeidel;
    direct_options.plan.gs_ordering = linalg::GsOrdering::kDirect;
    const csl::Checker colored_checker(space, colored_options);
    const csl::Checker direct_checker(space, direct_options);
    for (const std::string& text : properties.unbounded) {
      try {
        harness.compare("solver.colored_vs_direct_gs", seed, tag + text,
                        colored_checker.check(text), direct_checker.check(text),
                        options.solver_tolerance);
      } catch (const csl::PropertyError& error) {
        // Same skip rule as the solvers family: pure Gauss-Seidel may honestly
        // report non-convergence on stiff chains in either ordering.
        if (std::string(error.what()).find("converge") == std::string::npos) throw;
        harness.record_skip("solver.colored_vs_direct_gs");
      }
    }

    csl::CheckerOptions rcm_options;
    rcm_options.plan.reorder = linalg::StateReorder::kRcm;
    csl::CheckerOptions natural_options;
    natural_options.plan.reorder = linalg::StateReorder::kOff;
    const csl::Checker rcm_checker(space, rcm_options);
    const csl::Checker natural_checker(space, natural_options);
    for (const std::string& text : properties.bounded) {
      harness.compare("solver.rcm_vs_natural", seed, tag + text,
                      rcm_checker.check(text), natural_checker.check(text));
    }
  }

  // --- (c) lumped quotient vs full state space.
  if (options.check_lumping) {
    const csl::Checker checker(space);
    std::vector<std::string> lumping_properties = properties.bounded;
    for (const std::string& text : properties.unbounded) {
      lumping_properties.push_back(text);
    }
    for (const std::string& text : lumping_properties) {
      harness.compare("lumping.quotient_vs_full", seed, tag + text,
                      csl::check_lumped(*space, text).value, checker.check(text));
    }
  }

  // --- (d) serial vs parallel determinism (bit-exact by contract).
  if (options.check_parallel) {
    std::vector<std::string> all = properties.bounded;
    for (const std::string& text : properties.unbounded) all.push_back(text);

    util::set_thread_count(1);
    csl::EngineSession serial_session(space);
    const std::vector<double> serial = serial_session.check_all(all);

    util::set_thread_count(options.parallel_threads);
    csl::EngineSession parallel_session(space);
    const std::vector<double> parallel = parallel_session.check_all(all);
    util::set_thread_count(1);

    for (size_t i = 0; i < all.size(); ++i) {
      harness.compare_exact("parallel.determinism", seed, tag + all[i], serial[i],
                            parallel[i]);
    }
  }

  // --- (g) checkpoint resume vs fresh (csl/checkpoint.hpp). A run that
  // records every solve into a ledger, then a second run resuming from the
  // persisted snapshot, must replay every property bit-for-bit without
  // recomputing — the crash-durability contract behind `--checkpoint` and
  // serve worker respawns. The per-process temp dir keeps concurrent test
  // runs from sharing snapshot files.
  if (options.check_checkpoint) {
    std::vector<std::string> all = properties.bounded;
    for (const std::string& text : properties.unbounded) all.push_back(text);

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("autosec-differential-ckpt-" + std::to_string(static_cast<long>(::getpid())));
    csl::CheckpointOptions checkpoint_options;
    checkpoint_options.dir = dir.string();
    checkpoint_options.identity = "diff\x1f" + tag + '\x1f' + std::to_string(seed);
    checkpoint_options.interval_ms = 0;  // strongest durability: every record

    std::vector<double> fresh;
    {
      auto recording = std::make_shared<csl::CheckpointLedger>(checkpoint_options);
      recording->load();
      csl::EngineSession session(space);
      session.set_checkpoint(recording);
      fresh = session.check_all(all);
      recording->flush();
    }

    auto resumed = std::make_shared<csl::CheckpointLedger>(checkpoint_options);
    harness.record_pass_fail("checkpoint.resume_vs_fresh", seed,
                             tag + "snapshot recovers the recorded solves",
                             resumed->load() > 0);
    csl::EngineSession resumed_session(space);
    resumed_session.set_checkpoint(resumed);
    const std::vector<double> replayed = resumed_session.check_all(all);
    for (size_t i = 0; i < all.size(); ++i) {
      harness.compare_exact("checkpoint.resume_vs_fresh", seed, tag + all[i],
                            replayed[i], fresh[i]);
    }
    // Replay, not recompute: every evaluate must have been answered from the
    // loaded snapshot.
    harness.record_pass_fail("checkpoint.resume_vs_fresh", seed,
                             tag + "resumed run replayed every solve",
                             resumed->resumed_hits() >= all.size());
    std::error_code cleanup_error;
    fs::remove(resumed->path(), cleanup_error);
  }

  // --- (f) compact vs classic state store. Both stores are fed the same
  // intern() sequence, so the enumeration, matrix, masks, rewards and every
  // property value must agree bit-for-bit (reduction pinned off on both legs
  // — it is a separate axis, checked below).
  if (options.check_engine) {
    symbolic::ExploreOptions classic_options;
    classic_options.engine = symbolic::ExplorationEngine::kClassic;
    classic_options.reduction = symbolic::SymmetryReduction::kOff;
    symbolic::ExploreOptions compact_options;
    compact_options.engine = symbolic::ExplorationEngine::kCompact;
    compact_options.reduction = symbolic::SymmetryReduction::kOff;
    auto classic = std::make_shared<const StateSpace>(
        symbolic::explore(compiled, classic_options));
    auto compact = std::make_shared<const StateSpace>(
        symbolic::explore(compiled, compact_options));

    harness.record_pass_fail(
        "engine.compact_vs_classic", seed, tag + "identical state space",
        compact->state_count() == classic->state_count() &&
            compact->transition_count() == classic->transition_count() &&
            compact->initial_state() == classic->initial_state() &&
            csr_equal(compact->rates(), classic->rates()));
    for (const symbolic::LabelDecl& label : model.labels) {
      harness.record_pass_fail(
          "engine.compact_vs_classic", seed, tag + "label \"" + label.name + "\"",
          compact->label_mask(label.name) == classic->label_mask(label.name));
    }
    for (const symbolic::RewardStructDecl& reward : model.rewards) {
      harness.record_pass_fail(
          "engine.compact_vs_classic", seed, tag + "rewards \"" + reward.name + "\"",
          compact->reward_vector(reward.name) == classic->reward_vector(reward.name));
    }

    std::vector<std::string> all = properties.bounded;
    for (const std::string& text : properties.unbounded) all.push_back(text);
    csl::EngineSession classic_session(classic);
    csl::EngineSession compact_session(compact);
    const std::vector<double> classic_values = classic_session.check_all(all);
    const std::vector<double> compact_values = compact_session.check_all(all);
    for (size_t i = 0; i < all.size(); ++i) {
      harness.compare_exact("engine.compact_vs_classic", seed, tag + all[i],
                            compact_values[i], classic_values[i]);
    }

    // --- symmetry-reduced quotient vs the full space. The quotient is an
    // exact lumping, but its rates are summed in a different order, so
    // values are compared within the oracle tolerance (not bitwise). A
    // property whose state formula is not invariant under the detected group
    // is honestly rejected by the engine — counted as a skip.
    symbolic::ExploreOptions reduced_options;
    reduced_options.engine = symbolic::ExplorationEngine::kCompact;
    reduced_options.reduction = symbolic::SymmetryReduction::kOn;
    auto reduced = std::make_shared<const StateSpace>(
        symbolic::explore(compiled, reduced_options));
    harness.record_pass_fail("engine.reduced_vs_full", seed,
                             tag + "quotient is not larger than the full space",
                             reduced->state_count() <= classic->state_count());
    csl::EngineSession reduced_session(reduced);
    for (size_t i = 0; i < all.size(); ++i) {
      try {
        harness.compare("engine.reduced_vs_full", seed, tag + all[i],
                        reduced_session.check(all[i]), classic_values[i]);
      } catch (const symbolic::ModelError& error) {
        if (std::string(error.what()).find("not invariant") == std::string::npos) {
          throw;
        }
        harness.record_skip("engine.reduced_vs_full");
      }
    }
  }

  // --- (e) writer → parser round-trip identity.
  if (options.check_roundtrip) {
    const std::string text1 = symbolic::write_model(model);
    const Model reparsed = symbolic::parse_model(text1);
    const std::string text2 = symbolic::write_model(reparsed);
    harness.record_pass_fail("roundtrip.model_text_fixpoint", seed,
                             tag + "write(parse(write(m))) == write(m)", text1 == text2);

    const StateSpace space2 = symbolic::explore(symbolic::compile(reparsed));
    const bool structure_equal = space2.state_count() == space->state_count() &&
                                 space2.transition_count() == space->transition_count() &&
                                 space2.initial_state() == space->initial_state() &&
                                 csr_equal(space2.rates(), space->rates());
    harness.record_pass_fail("roundtrip.model_state_space", seed,
                             tag + "reparsed model explores identically",
                             structure_equal);
    for (const symbolic::LabelDecl& label : model.labels) {
      harness.record_pass_fail(
          "roundtrip.model_labels", seed, tag + "label \"" + label.name + "\"",
          space->label_mask(label.name) == space2.label_mask(label.name));
    }
    for (const symbolic::RewardStructDecl& reward : model.rewards) {
      harness.record_pass_fail(
          "roundtrip.model_rewards", seed, tag + "rewards \"" + reward.name + "\"",
          space->reward_vector(reward.name) == space2.reward_vector(reward.name));
    }
  }
}

/// Architecture-level round-trips, then the transformed model goes through
/// the full model battery.
void check_architecture(Harness& harness, uint64_t seed, const Architecture& arch) {
  automotive::TransformOptions transform_options;
  transform_options.message = arch.messages[seed % arch.messages.size()].name;
  constexpr automotive::SecurityCategory kCategories[] = {
      automotive::SecurityCategory::kConfidentiality,
      automotive::SecurityCategory::kIntegrity,
      automotive::SecurityCategory::kAvailability};
  transform_options.category = kCategories[(seed / 3) % 3];
  transform_options.nmax = 1;

  if (harness.options_.check_roundtrip) {
    const std::string text1 = automotive::write_architecture(arch);
    const Architecture reparsed = automotive::parse_architecture(text1);
    const std::string text2 = automotive::write_architecture(reparsed);
    harness.record_pass_fail("roundtrip.arch_text_fixpoint", seed,
                             "write(parse(write(a))) == write(a)", text1 == text2);
    harness.record_pass_fail(
        "roundtrip.arch_transform", seed,
        "transform(parse(write(a))) writes the identical model",
        symbolic::write_model(automotive::transform(arch, transform_options)) ==
            symbolic::write_model(automotive::transform(reparsed, transform_options)));
  }

  check_model(harness, seed, "arch:" + transform_options.message,
              automotive::transform(arch, transform_options));
}

/// MDP family: plain value iteration vs the exhaustive strategy-enumeration
/// oracle ("mdp.vi_vs_lp_small"), and interval iteration's sound brackets vs
/// the plain fixpoint ("mdp.interval_vs_plain"). Both directions, whole
/// value vector.
void check_mdp_model(Harness& harness, uint64_t seed, const RandomMdp& random) {
  if (!harness.options_.check_mdp) return;
  const mdp::Mdp& model = random.model;
  for (const bool maximize : {true, false}) {
    const std::string direction = maximize ? "Pmax" : "Pmin";

    mdp::ViOptions plain_options;
    plain_options.epsilon = 1e-12;
    const mdp::ViResult plain =
        mdp::reachability(model, random.target, maximize, plain_options);
    if (!plain.converged) {
      harness.record_skip("mdp.vi_vs_lp_small");
      harness.record_skip("mdp.interval_vs_plain");
      continue;
    }

    const std::vector<double> oracle =
        oracle_mdp_reachability(model, random.target, maximize);
    harness.record("mdp.vi_vs_lp_small", seed,
                   direction + " value iteration vs scheduler enumeration",
                   infinity_norm_difference(plain.values, oracle));

    mdp::ViOptions interval_options = plain_options;
    interval_options.interval = true;
    const mdp::ViResult interval =
        mdp::reachability(model, random.target, maximize, interval_options);
    if (!interval.converged) {
      harness.record_skip("mdp.interval_vs_plain");
      continue;
    }
    double violation = 0.0;
    for (size_t s = 0; s < plain.values.size(); ++s) {
      violation = std::max(violation, interval.lower[s] - plain.values[s]);
      violation = std::max(violation, plain.values[s] - interval.upper[s]);
    }
    harness.record("mdp.interval_vs_plain", seed,
                   direction + " plain fixpoint escapes the interval brackets",
                   violation, 1e-9);
  }
}

}  // namespace

std::string DifferentialReport::summary() const {
  std::ostringstream os;
  os << "differential report: " << iterations << " iterations, " << models_checked
     << " models";
  if (oracle_skipped_large > 0) {
    os << " (" << oracle_skipped_large << " too large for the dense oracle)";
  }
  os << "\n";
  size_t total_runs = 0, total_failures = 0;
  for (const auto& [name, outcome] : checks) {
    std::ostringstream line;
    line << "  " << name;
    while (line.str().size() < 36) line << ' ';
    line << outcome.runs << " runs, " << outcome.failures << " failures, max error "
         << outcome.max_error;
    if (outcome.skips > 0) line << ", " << outcome.skips << " skipped";
    line << "\n";
    os << line.str();
    total_runs += outcome.runs;
    total_failures += outcome.failures;
  }
  os << "  total" << std::string(31, ' ') << total_runs << " runs, " << total_failures
     << " failures\n";
  return os.str();
}

DifferentialReport run_differential(const DifferentialOptions& options) {
  DifferentialReport report;
  Harness harness(options, report);
  for (size_t i = 0; i < options.iterations && !harness.overflowed(); ++i) {
    const uint64_t seed = options.seed + i;
    ++report.iterations;
    try {
      check_model(harness, seed, "model", random_model(seed, options.model));
      check_architecture(harness, seed,
                         random_architecture(seed, options.architecture));
      check_mdp_model(harness, seed, random_mdp(seed, options.mdp));
    } catch (const std::exception& error) {
      CheckOutcome& outcome = report.checks["exception"];
      ++outcome.runs;
      ++outcome.failures;
      outcome.max_error = 1.0;
      report.failures.push_back("[seed " + std::to_string(seed) +
                                "] exception: " + error.what());
    }
  }
  // The determinism check moves the engine thread count around; hand the
  // process back with the automatic choice.
  if (options.check_parallel) util::set_thread_count(0);
  return report;
}

}  // namespace autosec::testing
