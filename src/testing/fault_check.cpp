#include "testing/fault_check.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>

#include "ctmc/transient.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/gauss_seidel.hpp"
#include "linalg/power_iteration.hpp"
#include "service/server.hpp"
#include "util/budget.hpp"
#include "util/failure.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace autosec::testing {

namespace {

using util::JsonValue;

/// Small but non-trivial architecture (two buses, four ECUs): every engine
/// stage the fault sites live in — explore, uniformize, steady state, the
/// fixpoint ladder — does real work on it.
constexpr const char* kArchText = R"(architecture "fault-check"

bus NET internet
bus CAN1 can
bus CAN2 can

ecu TCU phi=52
  iface NET eta=1.9
  iface CAN1 eta=3.8
ecu GW phi=4
  iface CAN1 eta=1.2
  iface CAN2 eta=1.2
ecu PA phi=12
  iface CAN1 eta=1.2
ecu PS phi=4
  iface CAN2 eta=1.2

message m from=PA to=PS via=CAN1,CAN2 protection=unencrypted
)";

/// Write the embedded architecture into the temp directory once per run.
std::string write_arch_file() {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "autosec-fault-check.arch";
  std::ofstream out(path);
  out << kArchText;
  return path.string();
}

std::string analyze_line(const std::string& arch_path, const std::string& id,
                         const std::string& extra = "") {
  return "{\"id\": \"" + id + "\", \"op\": \"analyze\", \"architecture\": \"" +
         arch_path + "\"" + extra + "}";
}

std::string error_code_of(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  if (!error || !error->is_object()) return "";
  return error->string_or("code", "");
}

/// One serve-level check: arm `site`, send a request, assert the outcome,
/// then prove the same server answers a plain follow-up request.
FaultCheckResult check_serve_fault(const std::string& arch_path,
                                   const std::string& site,
                                   const std::string& expected_code,
                                   const std::string& request_extra = "") {
  FaultCheckResult result;
  result.site = site;
  result.expectation = "serve answers '" + expected_code + "' and keeps serving";

  service::ServerOptions options;
  options.deterministic = true;
  service::Server server(options);

  util::fault::disarm_all();
  util::fault::arm_site(site);
  const JsonValue faulted = JsonValue::parse(
      server.handle_line(analyze_line(arch_path, "faulted", request_extra)));
  util::fault::disarm_all();

  if (faulted.bool_or("ok", true)) {
    result.detail = "request succeeded although '" + site + "' was armed";
    return result;
  }
  const std::string code = error_code_of(faulted);
  if (code != expected_code) {
    result.detail = "expected error code '" + expected_code + "', got '" + code +
                    "': " + faulted.find("error")->string_or("message", "");
    return result;
  }
  // One-shot semantics: the fault was absorbed by one request; the worker —
  // and, for engine-side failures, a freshly rebuilt session — keeps serving.
  const JsonValue follow_up = JsonValue::parse(
      server.handle_line(analyze_line(arch_path, "follow-up", request_extra)));
  if (!follow_up.bool_or("ok", false)) {
    result.detail =
        "follow-up request failed after the fault: " + error_code_of(follow_up);
    return result;
  }
  result.passed = true;
  return result;
}

/// Recoverable fault: the armed rung fails but the ladder falls through, so
/// the request SUCCEEDS and the fallback is visible in the metrics.
FaultCheckResult check_serve_fallback(const std::string& arch_path,
                                      const std::string& site) {
  FaultCheckResult result;
  result.site = site;
  result.expectation = "ladder falls back; response ok with solver_fallbacks >= 1";

  service::ServerOptions options;
  options.deterministic = true;
  service::Server server(options);

  util::fault::disarm_all();
  util::fault::arm_site(site);
  const JsonValue response = JsonValue::parse(
      server.handle_line(analyze_line(arch_path, "fallback")));
  util::fault::disarm_all();

  if (!response.bool_or("ok", false)) {
    result.detail = "request failed (" + error_code_of(response) +
                    ") although the ladder should have recovered";
    return result;
  }
  const JsonValue* metrics = response.find("metrics");
  const double fallbacks =
      metrics ? metrics->number_or("solver_fallbacks", 0.0) : 0.0;
  if (!(fallbacks >= 1.0)) {
    result.detail = "metrics.solver_fallbacks is 0 — the fault never fired or "
                    "the fallback went unrecorded";
    return result;
  }
  result.passed = true;
  return result;
}

/// Tiny 2x2 fixpoint system x = A·x + b with spectral radius 1/2: every rung
/// solves it instantly unless its fault site fires.
linalg::CsrMatrix tiny_fixpoint_matrix() {
  linalg::CsrBuilder builder(2, 2);
  builder.add(0, 1, 0.5);
  builder.add(1, 0, 0.5);
  return std::move(builder).build();
}

/// Tiny irreducible transposed generator (two states, rates 1 and 2).
linalg::CsrMatrix tiny_transposed_generator() {
  linalg::CsrBuilder builder(2, 2);
  builder.add(0, 0, -1.0);
  builder.add(0, 1, 2.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, -2.0);
  return std::move(builder).build();
}

/// Kernel-level check: arm `site` and assert the solver run reports an honest
/// diverged result (not a crash, not a silently wrong answer).
FaultCheckResult check_kernel_diverged(
    const std::string& site, const std::function<linalg::IterativeResult()>& run) {
  FaultCheckResult result;
  result.site = site;
  result.expectation = "kernel reports diverged, result not silently wrong";

  util::fault::disarm_all();
  util::fault::arm_site(site);
  const linalg::IterativeResult solved = run();
  util::fault::disarm_all();

  if (!solved.diverged) {
    result.detail = "solver did not report diverged with '" + site + "' armed";
    return result;
  }
  if (solved.converged) {
    result.detail = "solver claims converged AND diverged";
    return result;
  }
  result.passed = true;
  return result;
}

/// Budget-ordering check: with a tiny byte ceiling AND the allocation fault
/// armed, uniformize must unwind as the typed budget failure. The fault site
/// is polled just before the build allocates, so a bad_alloc here would mean
/// the budget was charged too late — after the matrices were already built.
FaultCheckResult check_uniformize_budget_order() {
  FaultCheckResult result;
  result.site = "uniformize.alloc";
  result.expectation = "memory budget trips before the allocation fault fires";

  linalg::CsrBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 2.0);
  const ctmc::Ctmc chain{std::move(builder).build()};
  ctmc::TransientOptions options;
  options.budget = std::make_shared<util::ResourceBudget>(0, 64);

  util::fault::disarm_all();
  util::fault::arm_site("uniformize.alloc");
  try {
    ctmc::uniformize(chain, options);
    result.detail = "uniformize succeeded despite the ceiling and armed fault";
  } catch (const util::EngineFailure& failure) {
    if (failure.code() == util::FailureCode::kMemoryBudgetExceeded) {
      result.passed = true;
    } else {
      result.detail = std::string("unexpected typed failure '") +
                      failure.code_name() + "'";
    }
  } catch (const std::bad_alloc&) {
    result.detail = "the allocation fault fired first — the budget charge "
                    "must precede the build";
  }
  util::fault::disarm_all();
  return result;
}

}  // namespace

std::string FaultCheckReport::summary() const {
  std::ostringstream os;
  size_t passed = 0;
  for (const FaultCheckResult& result : results) {
    os << (result.passed ? "  PASS  " : "  FAIL  ") << result.site << " — "
       << result.expectation;
    if (!result.passed && !result.detail.empty()) {
      os << "\n        " << result.detail;
    }
    os << "\n";
    if (result.passed) ++passed;
  }
  os << passed << "/" << results.size() << " fault checks passed\n";
  return os.str();
}

FaultCheckReport run_fault_checks() {
  const std::string arch_path = write_arch_file();
  FaultCheckReport report;

  // Hard faults: the request fails with the typed code, the next one works.
  report.results.push_back(
      check_serve_fault(arch_path, "explore.alloc", "oom"));
  report.results.push_back(
      check_serve_fault(arch_path, "uniformize.alloc", "oom"));
  // Ordering proof for the same site: a tripped memory budget wins over the
  // armed allocation fault, because uniformize charges its peak up front.
  report.results.push_back(check_uniformize_budget_order());
  report.results.push_back(
      check_serve_fault(arch_path, "serve.dispatch.alloc", "oom"));
  report.results.push_back(
      check_serve_fault(arch_path, "solve.cancel", "timeout"));
  // Pinned to the Gauss-Seidel method there is no ladder below the faulted
  // rung — the solve fails with solver_diverged instead of degrading.
  report.results.push_back(
      check_serve_fault(arch_path, "gauss_seidel.diverge", "solver_diverged",
                        ", \"solver\": \"gauss_seidel\""));

  // Recoverable fault: BiCGSTAB breaks down, the ladder's Gauss-Seidel rung
  // answers, and the degradation is visible in the response metrics.
  report.results.push_back(check_serve_fallback(arch_path, "krylov.breakdown"));

  // Kernel-level health: each rung reports honest divergence when faulted.
  report.results.push_back(check_kernel_diverged("krylov.breakdown", [] {
    linalg::IterativeOptions options;
    options.method = linalg::FixpointMethod::kKrylov;
    return linalg::solve_fixpoint(tiny_fixpoint_matrix(), {1.0, 1.0}, options);
  }));
  report.results.push_back(check_kernel_diverged("power.diverge", [] {
    return linalg::solve_fixpoint_power(tiny_fixpoint_matrix(), {1.0, 1.0});
  }));
  report.results.push_back(check_kernel_diverged("stationary.diverge", [] {
    return linalg::stationary_from_transposed(tiny_transposed_generator());
  }));

  return report;
}

}  // namespace autosec::testing
