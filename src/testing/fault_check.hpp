// Fault-injection verification: arm every known fault site in turn and prove
// the engine converts the fault into a structured outcome instead of
// crashing — a typed error envelope at the serve layer (oom, timeout,
// solver_diverged), a recorded fallback rung for recoverable solver faults,
// or an honestly-diverged result at the kernel layer — and that the serve
// worker keeps answering requests afterwards (the one-shot fault semantics of
// util/fault.hpp). `autosec-verify --faults` is the CLI front end; the CI
// fault leg runs it under ASan.
#pragma once

#include <string>
#include <vector>

namespace autosec::testing {

struct FaultCheckResult {
  std::string site;         ///< fault site armed for this check
  std::string expectation;  ///< what the check asserted, human-readable
  bool passed = false;
  std::string detail;  ///< failure explanation; empty when passed
};

struct FaultCheckReport {
  std::vector<FaultCheckResult> results;

  bool ok() const {
    for (const FaultCheckResult& result : results) {
      if (!result.passed) return false;
    }
    return !results.empty();
  }

  /// Multi-line per-site PASS/FAIL table.
  std::string summary() const;
};

/// Run every fault check. Self-contained: builds its own architecture file in
/// the system temp directory and its own serve instance. Leaves the fault
/// registry disarmed on return.
FaultCheckReport run_fault_checks();

}  // namespace autosec::testing
