// Randomized differential harness: every iteration generates a seeded random
// model (and a random architecture, transformed through the automotive
// layer), then cross-checks the staged engine along independent axes:
//
//   oracle      transient / steady-state / cumulative / instantaneous reward
//               and bounded reachability against the dense expm oracle
//               (testing/oracle.hpp), on chains small enough to cube;
//   solvers     Krylov (BiCGSTAB) vs pure Gauss-Seidel on every unbounded
//               property (reachability, steady-state, reachability reward);
//   kernels     the blocked SELL-C-σ transient kernel vs the classic CSR
//               kernel (bit-exact by contract), multicolor Gauss-Seidel vs
//               the direct serial sweep (solver tolerance), and RCM-reordered
//               solves vs natural state order (oracle tolerance);
//   lumping     lumped-quotient checking vs the full-space engine;
//   parallel    the whole property batch at 1 thread vs N threads, required
//               to agree bit-for-bit (the engine's determinism contract);
//   roundtrip   write_model → parse_model → explore yields the identical
//               state space, and write∘parse∘write is a fixpoint; same for
//               write_architecture/parse_architecture plus the transformed
//               models of both architectures;
//   engine      the compact (bit-packed, hash-consed) state store vs the
//               classic vector store, required to produce the identical
//               state enumeration, rate matrix, masks, rewards and property
//               values bit-for-bit; plus the symmetry-reduced quotient vs
//               the full space on every group-invariant property;
//   mdp         value iteration on a tiny random MDP vs the exhaustive
//               strategy-enumeration oracle (every memoryless scheduler's
//               induced DTMC solved densely), for Pmax and Pmin
//               ("mdp.vi_vs_lp_small"), and interval iteration's sound
//               brackets required to contain the plain value-iteration
//               fixpoint ("mdp.interval_vs_plain");
//   checkpoint  a run recording into a checkpoint ledger, then a second run
//               resuming from the persisted snapshot, required to replay
//               every property value bit-for-bit without recomputing
//               ("checkpoint.resume_vs_fresh") — the crash-durability
//               contract behind --checkpoint and serve worker respawns.
//
// A failure records the iteration's seed; `autosec-verify --seed S
// --iterations 1` reproduces it exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "testing/random_model.hpp"

namespace autosec::testing {

struct DifferentialOptions {
  uint64_t seed = 1;
  size_t iterations = 100;
  /// Engine-vs-oracle and cross-method tolerance on |a−b| / max(1, |a|, |b|).
  double tolerance = 1e-8;
  /// Tolerance of the Krylov-vs-Gauss-Seidel family. Looser than the oracle
  /// tolerance by design: on stiff chains the achievable Gauss-Seidel
  /// accuracy is the sweep tolerance amplified by the system's condition
  /// number (~1/(1−ρ)), which random stiff models push to 1e4 and beyond.
  double solver_tolerance = 1e-6;
  /// Chains above this state count skip the dense-oracle checks (the other
  /// check families still run).
  size_t oracle_max_states = 200;
  /// Thread count of the parallel leg of the determinism check.
  size_t parallel_threads = 4;
  /// Stop after this many recorded failures.
  size_t max_failures = 20;

  bool check_oracle = true;
  bool check_solvers = true;
  bool check_kernels = true;
  bool check_lumping = true;
  bool check_parallel = true;
  bool check_roundtrip = true;
  bool check_engine = true;
  bool check_mdp = true;
  bool check_checkpoint = true;

  RandomModelOptions model;
  RandomArchitectureOptions architecture;
  RandomMdpOptions mdp;
};

/// Aggregate outcome of one check family.
struct CheckOutcome {
  size_t runs = 0;      ///< individual comparisons performed
  size_t failures = 0;  ///< comparisons beyond tolerance
  size_t skips = 0;     ///< comparisons skipped on an honestly reported
                        ///< solver non-convergence (not silent disagreement)
  double max_error = 0.0;
};

struct DifferentialReport {
  size_t iterations = 0;
  size_t models_checked = 0;
  size_t oracle_skipped_large = 0;  ///< models too large for the dense oracle
  std::map<std::string, CheckOutcome> checks;
  /// Human-readable failure descriptions (seed, check, values), capped at
  /// DifferentialOptions::max_failures.
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  /// Multi-line summary table (per-check runs / failures / max error).
  std::string summary() const;
};

/// Run the harness. Deterministic in (options.seed, options.iterations);
/// iteration i uses seed options.seed + i for both generators.
DifferentialReport run_differential(const DifferentialOptions& options);

}  // namespace autosec::testing
