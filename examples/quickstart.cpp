// Quickstart: the complete analysis flow of the paper's Fig. 2 in ~40 lines.
//
//   1. Describe an automotive architecture (buses, ECUs, a message stream).
//   2. Transform + model-check it for one security category.
//   3. Read off the paper's headline metric: the percentage of one year the
//      message is exploitable.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "autosec.hpp"

using namespace autosec::automotive;

int main() {
  // A minimal vehicle in the shape of the paper's Fig. 1: an internet-facing
  // telematics unit shares a CAN bus with the pedal sensor and the brake
  // actuator; the pedal's unencrypted control message is what a compromised
  // telematics unit would spoof.
  Architecture arch;
  arch.name = "quickstart";
  arch.buses.push_back({"NET", BusKind::kInternet, std::nullopt, std::nullopt});
  arch.buses.push_back({"CAN", BusKind::kCan, std::nullopt, std::nullopt});

  Ecu telematics;
  telematics.name = "TCU";
  telematics.phi = autosec::assess::patch_rate(autosec::assess::Asil::kA);  // 52/year
  telematics.interfaces = {
      {"NET", autosec::assess::parse_cvss_vector("AV:N/AC:H/Au:M").exploitability_rate(),
       std::nullopt},
      {"CAN", autosec::assess::parse_cvss_vector("AV:A/AC:L/Au:S").exploitability_rate(),
       std::nullopt},
  };
  arch.ecus.push_back(telematics);

  Ecu pedal;
  pedal.name = "PEDAL";
  pedal.phi = autosec::assess::patch_rate(autosec::assess::Asil::kD);  // 4/year
  pedal.interfaces = {
      {"CAN", autosec::assess::parse_cvss_vector("AV:A/AC:H/Au:S").exploitability_rate(),
       std::nullopt}};
  arch.ecus.push_back(pedal);

  Ecu brake;
  brake.name = "BRAKE";
  brake.phi = autosec::assess::patch_rate(autosec::assess::Asil::kD);  // 4/year
  brake.interfaces = {
      {"CAN", autosec::assess::parse_cvss_vector("AV:A/AC:H/Au:S").exploitability_rate(),
       std::nullopt}};
  arch.ecus.push_back(brake);

  Message command;
  command.name = "brake_cmd";
  command.sender = "PEDAL";
  command.receivers = {"BRAKE"};
  command.buses = {"CAN"};
  command.protection = Protection::kUnencrypted;
  arch.messages.push_back(command);

  // Analyze integrity ("can an attacker create/modify brake_cmd?").
  AnalysisOptions options;
  options.nmax = 2;
  const AnalysisResult result =
      analyze_message(arch, "brake_cmd", SecurityCategory::kIntegrity, options);

  std::printf("model: %zu states, %zu transitions\n", result.state_count,
              result.transition_count);
  std::printf("brake_cmd integrity-exploitable:    %.3f%% of the first year\n",
              result.exploitable_fraction * 100.0);
  std::printf("probability of a breach in year 1:  %.3f\n", result.breach_probability);
  std::printf("long-run exploitable time share:    %.3f%%\n",
              result.steady_state_fraction * 100.0);

  // Would CMAC-128 message authentication help?
  arch.messages[0].protection = Protection::kCmac128;
  const AnalysisResult with_cmac =
      analyze_message(arch, "brake_cmd", SecurityCategory::kIntegrity, options);
  std::printf("...with CMAC-128 authentication:    %.3f%% of the first year\n",
              with_cmac.exploitable_fraction * 100.0);
  return 0;
}
