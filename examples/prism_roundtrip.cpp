// Interchange with the paper's toolchain: the architecture-to-CTMC
// transformation emits a model in the PRISM language, so the exact model this
// library checks can be dumped to a .prism/.sm file, inspected, and run
// through PRISM itself (the tool used in the paper) — and PRISM-subset files
// can be loaded back into this engine.
//
// Writes the generated model of Architecture 1 (confidentiality, AES-128) to
// arch1_confidentiality.sm in the current directory, re-parses it, and shows
// both copies agree on every reported measure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "autosec.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

int main() {
  TransformOptions options;
  options.message = cs::kMessage;
  options.category = SecurityCategory::kConfidentiality;
  options.nmax = 2;
  const symbolic::Model generated =
      transform(cs::architecture(1, Protection::kAes128), options);

  const std::string text = symbolic::write_model(generated);
  const char* path = "arch1_confidentiality.sm";
  std::ofstream(path) << text;
  std::printf("wrote %s (%zu bytes)\n\n", path, text.size());

  // Show the head of the generated PRISM source.
  std::istringstream lines(text);
  std::string line;
  int shown = 0;
  while (std::getline(lines, line) && shown++ < 18) std::cout << "  " << line << "\n";
  std::cout << "  ...\n\n";

  // Load it back and verify agreement.
  std::ifstream input(path);
  std::stringstream buffer;
  buffer << input.rdbuf();
  const symbolic::Model reparsed = symbolic::parse_model(buffer.str());

  const symbolic::StateSpace original_space =
      symbolic::explore(symbolic::compile(generated));
  const symbolic::StateSpace reparsed_space =
      symbolic::explore(symbolic::compile(reparsed));
  const csl::Checker original(
      std::make_shared<const symbolic::StateSpace>(original_space));
  const csl::Checker roundtripped(
      std::make_shared<const symbolic::StateSpace>(reparsed_space));

  util::TextTable table({"Property", "generated", "reparsed"});
  for (const char* property :
       {"R{\"exposure\"}=? [ C<=1 ]", "P=? [ F<=1 \"violated\" ]",
        "S=? [ \"violated\" ]", "P=? [ F<=1 \"ecu_3g_exploited\" ]"}) {
    table.add_row({property, util::format_sig(original.check(property), 6),
                   util::format_sig(roundtripped.check(property), 6)});
  }
  std::cout << table << "\n";
  std::printf("states: generated %zu, reparsed %zu\n", original_space.state_count(),
              reparsed_space.state_count());
  std::cout << "The .sm file is directly loadable by PRISM 4.x for cross-validation.\n";
  return 0;
}
