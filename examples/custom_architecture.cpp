// Building and analyzing a custom architecture from scratch — the workflow a
// downstream user follows for their own vehicle platform. Models a richer
// E/E architecture than the paper's case study (telematics + OBD dongle as
// entry points, a FlexRay drivetrain domain, a CAN body domain behind a
// gateway) and answers design questions the paper's framework is built for:
// which functions are exposed, where patching effort pays off, and what an
// aftermarket OBD dongle does to the attack surface.
#include <cstdio>
#include <iostream>

#include "autosec.hpp"

using namespace autosec;
using namespace autosec::automotive;
using assess::Asil;
using assess::parse_cvss_vector;

namespace {

Interface iface(const std::string& bus, const char* cvss) {
  const auto vector = parse_cvss_vector(cvss);
  return {bus, vector.exploitability_rate(), vector};
}

Architecture build_platform(bool with_obd_dongle) {
  Architecture arch;
  arch.name = with_obd_dongle ? "platform + OBD dongle" : "platform";

  arch.buses.push_back({"NET", BusKind::kInternet, std::nullopt, std::nullopt});
  arch.buses.push_back({"FR_DRIVE", BusKind::kFlexRay, GuardianSpec{0.2, 4.0}, std::nullopt});
  arch.buses.push_back({"CAN_BODY", BusKind::kCan, std::nullopt, std::nullopt});
  if (with_obd_dongle) {
    // The dongle bridges its own radio (internet-reachable) onto the body CAN.
    arch.buses.push_back({"OBD_RADIO", BusKind::kInternet, std::nullopt, std::nullopt});
  }

  Ecu tcu{"TCU", assess::patch_rate(Asil::kA), Asil::kA,
          {iface("NET", "AV:N/AC:H/Au:M"), iface("CAN_BODY", "AV:A/AC:L/Au:S")},
          std::nullopt};
  Ecu gateway{"GW", assess::patch_rate(Asil::kD), Asil::kD,
              {iface("CAN_BODY", "AV:A/AC:H/Au:S"), iface("FR_DRIVE", "AV:A/AC:H/Au:S")},
              std::nullopt};
  Ecu engine{"ENGINE", assess::patch_rate(Asil::kD), Asil::kD,
             {iface("FR_DRIVE", "AV:A/AC:H/Au:S")}, std::nullopt};
  Ecu brakes{"BRAKES", assess::patch_rate(Asil::kD), Asil::kD,
             {iface("FR_DRIVE", "AV:A/AC:H/Au:S")}, std::nullopt};
  Ecu climate{"CLIMATE", assess::patch_rate(Asil::kQm), Asil::kQm,
              {iface("CAN_BODY", "AV:A/AC:M/Au:N")}, std::nullopt};
  arch.ecus = {tcu, gateway, engine, brakes, climate};
  if (with_obd_dongle) {
    arch.ecus.push_back({"DONGLE", 1.0, std::nullopt,  // rarely updated aftermarket
                         {iface("OBD_RADIO", "AV:N/AC:L/Au:N"),
                          iface("CAN_BODY", "AV:A/AC:L/Au:N")},
                         std::nullopt});
  }

  Message torque;
  torque.name = "torque_req";
  torque.sender = "GW";
  torque.receivers = {"ENGINE"};
  torque.buses = {"FR_DRIVE"};
  torque.protection = Protection::kCmac128;
  arch.messages.push_back(torque);

  Message climate_set;
  climate_set.name = "climate_set";
  climate_set.sender = "TCU";
  climate_set.receivers = {"CLIMATE"};
  climate_set.buses = {"CAN_BODY"};
  climate_set.protection = Protection::kUnencrypted;
  arch.messages.push_back(climate_set);

  arch.validate();
  return arch;
}

void report(const Architecture& arch) {
  AnalysisOptions options;
  options.nmax = 1;  // 10+ interfaces: keep the product space comfortable

  std::cout << "=== " << arch.name << " ===\n";
  util::TextTable table({"Message", "Category", "exploitable (year 1)",
                         "breach probability"});
  for (const Message& message : arch.messages) {
    for (const SecurityCategory category :
         {SecurityCategory::kIntegrity, SecurityCategory::kAvailability}) {
      const AnalysisResult result =
          analyze_message(arch, message.name, category, options);
      table.add_row({message.name, std::string(category_name(category)),
                     util::format_percent(result.exploitable_fraction),
                     util::format_sig(result.breach_probability, 3)});
    }
  }
  std::cout << table << "\n";
}

}  // namespace

int main() {
  const Architecture base = build_platform(false);
  const Architecture dongled = build_platform(true);

  report(base);
  report(dongled);

  // Quantify the dongle's damage on the safety-critical stream.
  AnalysisOptions options;
  options.nmax = 1;
  const double before = analyze_message(base, "torque_req",
                                        SecurityCategory::kIntegrity, options)
                            .exploitable_fraction;
  const double after = analyze_message(dongled, "torque_req",
                                       SecurityCategory::kIntegrity, options)
                           .exploitable_fraction;
  std::printf(
      "An always-online OBD dongle multiplies torque_req integrity exposure by "
      "%.1fx\n(%.4f%% -> %.4f%%), despite the FlexRay drivetrain: it hands the "
      "attacker a\nsecond, poorly patched foothold on the body CAN.\n",
      after / before, before * 100.0, after * 100.0);
  return 0;
}
