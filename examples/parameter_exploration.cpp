// Parameter exploration — the paper's Section 4.2 use case: how hard must a
// supplier's component be to exploit, and how fast must the OEM patch it, to
// keep a function's exposure under a target? Sweeps the telematics unit's
// patch and exploitation rates (Fig. 6) and derives contract-ready numbers
// for a configurable exploitability budget.
//
// The sweep showcases the staged engine: ONE csl::EngineSession owns the
// transformed model, and each sweep point only re-keys the session's
// constant overrides — the symbolic transform is never redone, every
// (constant, value) pipeline stays cached (revisiting a value is free), and
// the solver stages reuse cached Poisson weights. AUTOSEC_THREADS (or
// util::set_thread_count) sizes the thread pool used by the numeric kernels.
//
// Usage: parameter_exploration [threshold-percent]   (default 0.5)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "autosec.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

/// One staged session for the whole exploration; sweep points re-key it.
csl::EngineSession& session() {
  static csl::EngineSession instance = [] {
    TransformOptions transform_options;
    transform_options.message = cs::kMessage;
    transform_options.category = SecurityCategory::kConfidentiality;
    transform_options.nmax = 2;
    return csl::EngineSession(
        transform(cs::architecture(1, Protection::kUnencrypted), transform_options));
  }();
  return instance;
}

double exposure_with_override(const std::string& constant, double value) {
  session().set_constant_overrides({{constant, symbolic::Value::of(value)}});
  // Horizon 1 year: the expected cumulated violation time IS the fraction.
  return session().check("R{\"exposure\"}=? [ C<=1 ]");
}

/// Bisect for the rate where exposure crosses `target` (exposure is monotone
/// in each rate). `decreasing` = exposure falls as the rate grows (patching).
double solve_rate(const std::string& constant, double target, bool decreasing) {
  double low = 0.1, high = 8760.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = std::sqrt(low * high);  // geometric bisection
    const double value = exposure_with_override(constant, mid);
    const bool need_larger = decreasing ? (value > target) : (value < target);
    (need_larger ? low : high) = mid;
  }
  return std::sqrt(low * high);
}

}  // namespace

int main(int argc, char** argv) {
  const double threshold_percent = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double threshold = threshold_percent / 100.0;

  std::cout << "Fig. 6-style exploration, Architecture 1, message m, confidentiality.\n"
            << "Exploitability budget: " << threshold_percent << "% of one year.\n\n";

  const std::string phi = ecu_phi_constant(cs::kTelematics);
  const std::string eta = interface_eta_constant(cs::kTelematics, cs::kUplink);

  std::cout << "Sweep (a): telematics patch rate (uplink eta fixed at 1.9/year)\n";
  util::TextTable sweep({"rate (1/year)", "exposure (phi sweep)", "exposure (eta sweep)"});
  for (double rate : {0.1, 0.5, 2.0, 6.0, 12.0, 52.0, 365.0, 8760.0}) {
    sweep.add_row({util::format_sig(rate, 4),
                   util::format_percent(exposure_with_override(phi, rate)),
                   util::format_percent(exposure_with_override(eta, rate))});
  }
  std::cout << sweep << "\n";

  const double phi_needed = solve_rate(phi, threshold, /*decreasing=*/true);
  std::printf("Contract numbers for a %.2f%% budget:\n", threshold_percent);
  std::printf("  required patch cadence:    phi_3G >= %.2f/year (every %.1f days)\n",
              phi_needed, 365.0 / phi_needed);
  // eta = 0.1 was already swept above — this re-key is a pure cache hit.
  const double floor_exposure = exposure_with_override(eta, 0.1);
  if (floor_exposure > threshold) {
    std::printf(
        "  hardening alone cannot meet the budget: even at eta_3G = 0.1/year the\n"
        "  exposure is %.3f%% (other attack paths dominate); combine with patching.\n",
        floor_exposure * 100.0);
  } else {
    const double eta_max = solve_rate(eta, threshold, /*decreasing=*/false);
    std::printf("  max tolerable exploit rate: eta_3G <= %.2f/year at weekly patching\n",
                eta_max);
  }
  std::printf(
      "\n(The paper reads ~phi = 6/year and ~eta = 12/year off Fig. 6 for 0.5%%;\n"
      "the bisection above computes the same crossings on our model.)\n");

  const csl::SessionStats& stats = session().stats();
  std::printf(
      "\nstaged engine: %zu properties answered, %zu explorations "
      "(%zu cached re-keys), %u pool threads\n",
      stats.check_count, stats.explore_count,
      stats.check_count - stats.explore_count,
      static_cast<unsigned>(util::thread_count()));
  return 0;
}
