// Scaling to bigger architectures — the paper's Section 4.3 concern — using
// the two levers this library provides beyond brute force:
//
//   * ordinary lumping ("targeted model checking", Section 5 future work):
//     symmetric substructures — k identical zone ECUs — collapse from 3^k
//     interface combinations to k+1 counts, exactly;
//   * statistical model checking: a Gillespie simulator whose cost grows
//     with trajectory length, not state count.
//
// Both are run against the direct numerical engine on a zonal architecture
// with a growing number of identical zone controllers, printing agreement
// and runtimes.
#include <cstdio>
#include <iostream>

#include "autosec.hpp"
#include "csl/lumped.hpp"
#include "ctmc/simulation.hpp"

using namespace autosec;
using namespace autosec::automotive;

namespace {

Architecture zonal_platform(int zones) {
  Architecture arch;
  arch.name = "zonal platform, " + std::to_string(zones) + " zones";
  arch.buses.push_back({"NET", BusKind::kInternet, std::nullopt, std::nullopt});
  arch.buses.push_back({"BB", BusKind::kCan, std::nullopt, std::nullopt});

  Ecu connectivity{"CONN", 52.0, assess::Asil::kA,
                   {{"NET", 1.9, std::nullopt}, {"BB", 3.8, std::nullopt}},
                   std::nullopt};
  arch.ecus.push_back(connectivity);
  Ecu central{"CENTRAL", 12.0, assess::Asil::kC, {{"BB", 1.2, std::nullopt}},
              std::nullopt};
  arch.ecus.push_back(central);
  for (int z = 0; z < zones; ++z) {
    Ecu zone{"ZONE" + std::to_string(z), 12.0, assess::Asil::kC,
             {{"BB", 1.2, std::nullopt}}, std::nullopt};
    arch.ecus.push_back(zone);
  }

  Message command;
  command.name = "zone_cmd";
  command.sender = "CENTRAL";
  command.receivers = {"ZONE0"};
  command.buses = {"BB"};
  command.protection = Protection::kCmac128;
  arch.messages.push_back(command);
  arch.validate();
  return arch;
}

}  // namespace

int main() {
  std::cout << "Integrity of zone_cmd (CMAC-128) on growing zonal platforms,\n"
               "checked three ways: direct numerics, lumped numerics, simulation.\n\n";
  util::TextTable table({"zones", "states", "lumped", "direct", "lumped value",
                         "simulated (95% CI)", "direct s", "lumped s"});

  for (int zones : {2, 4, 6, 8}) {
    const Architecture arch = zonal_platform(zones);
    AnalysisOptions options;
    options.nmax = 2;
    const SecurityAnalysis analysis(arch, "zone_cmd", SecurityCategory::kIntegrity,
                                    options);
    const char* property = "R{\"exposure\"}=? [ C<=1 ]";

    util::Stopwatch direct_watch;
    const double direct = analysis.check(property);
    const double direct_seconds = direct_watch.elapsed_seconds();

    util::Stopwatch lumped_watch;
    const csl::LumpedCheckResult lumped = csl::check_lumped(analysis.space(), property);
    const double lumped_seconds = lumped_watch.elapsed_seconds();

    ctmc::SimulationOptions simulation;
    simulation.samples = 4000;
    simulation.seed = 11;
    const ctmc::Ctmc chain = analysis.space().to_ctmc();
    const auto estimate = ctmc::estimate_time_fraction(
        chain, static_cast<uint32_t>(analysis.space().initial_state()),
        analysis.space().label_mask(kViolatedLabel), 1.0, simulation);

    table.add_row({std::to_string(zones), std::to_string(lumped.original_states),
                   std::to_string(lumped.lumped_states), util::format_percent(direct),
                   util::format_percent(lumped.value),
                   util::format_percent(estimate.mean) + " +/- " +
                       util::format_percent(estimate.half_width),
                   util::format_sig(direct_seconds, 3),
                   util::format_sig(lumped_seconds, 3)});
  }
  std::cout << table << "\n";
  std::cout << "All three paths agree; the lumped state count grows polynomially in the\n"
               "zone count while the direct product grows geometrically — the exact\n"
               "reduction the paper's future-work checker aims for.\n";
  return 0;
}
