// Architecture comparison — the paper's core use case (Section 4.1): given
// three candidate E/E architectures for the park-assist function, which one
// should a decision maker pick, and does message protection change the
// answer? Reproduces the Fig. 5 analysis with commentary, and goes beyond it
// with per-component breach probabilities that show *why* each architecture
// scores the way it does.
#include <iostream>

#include "autosec.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

int main() {
  AnalysisOptions options;
  options.nmax = 2;

  std::cout << "Which architecture keeps the park-assist message stream m safest?\n\n";

  util::TextTable grid({"Category", "Protection", "Arch 1 (CAN)",
                        "Arch 2 (CAN, dedicated)", "Arch 3 (FlexRay)"});
  for (const SecurityCategory category :
       {SecurityCategory::kConfidentiality, SecurityCategory::kIntegrity,
        SecurityCategory::kAvailability}) {
    for (const Protection protection :
         {Protection::kUnencrypted, Protection::kCmac128, Protection::kAes128}) {
      std::vector<std::string> row{std::string(category_name(category)),
                                   std::string(protection_name(protection))};
      for (int which = 1; which <= 3; ++which) {
        const AnalysisResult result = analyze_message(
            cs::architecture(which, protection), cs::kMessage, category, options);
        row.push_back(util::format_percent(result.exploitable_fraction));
      }
      grid.add_row(row);
    }
  }
  std::cout << grid << "\n";

  std::cout << "Why: per-ECU probability of being exploited at least once in year 1\n"
               "(Architecture 1, unencrypted):\n\n";
  const SecurityAnalysis analysis(cs::architecture(1, Protection::kUnencrypted),
                                  cs::kMessage, SecurityCategory::kConfidentiality,
                                  options);
  util::TextTable why({"Component", "P[exploited within 1 year]"});
  for (const char* ecu : {"3g", "gw", "pa", "ps"}) {
    const std::string property =
        "P=? [ F<=1 \"ecu_" + std::string(ecu) + "_exploited\" ]";
    why.add_row({ecu, util::format_sig(analysis.check(property), 3)});
  }
  why.add_row({"bus CAN1", util::format_sig(
                               analysis.check("P=? [ F<=1 \"bus_can1_exploitable\" ]"), 3)});
  why.add_row({"bus CAN2", util::format_sig(
                               analysis.check("P=? [ F<=1 \"bus_can2_exploitable\" ]"), 3)});
  std::cout << why << "\n";

  std::cout
      << "Reading the numbers the way Section 4.1 does:\n"
         "  * The telematics unit falls quickly (internet-facing), exposing CAN1;\n"
         "    in Architecture 1 message m shares that bus, so m is exposed too.\n"
         "  * Architecture 2 moves m off the telematics bus, but the PA/GW patch\n"
         "    rates (ASIL C/D) still leak exposure onto CAN2 - no dramatic win.\n"
         "  * Architecture 3's time-triggered FlexRay requires the bus guardian\n"
         "    to fall as well; exposure drops by an order of magnitude.\n"
         "  * CMAC only protects integrity; AES also protects confidentiality;\n"
         "    availability only improves with the bus redesign.\n";
  return 0;
}
