file(REMOVE_RECURSE
  "../bench/bench_fig5_architectures"
  "../bench/bench_fig5_architectures.pdb"
  "CMakeFiles/bench_fig5_architectures.dir/bench_fig5_architectures.cpp.o"
  "CMakeFiles/bench_fig5_architectures.dir/bench_fig5_architectures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
