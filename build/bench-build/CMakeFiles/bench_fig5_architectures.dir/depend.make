# Empty dependencies file for bench_fig5_architectures.
# This may be replaced when dependencies are built.
