file(REMOVE_RECURSE
  "../bench/bench_smc_validation"
  "../bench/bench_smc_validation.pdb"
  "CMakeFiles/bench_smc_validation.dir/bench_smc_validation.cpp.o"
  "CMakeFiles/bench_smc_validation.dir/bench_smc_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smc_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
