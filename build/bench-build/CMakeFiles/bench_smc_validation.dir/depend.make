# Empty dependencies file for bench_smc_validation.
# This may be replaced when dependencies are built.
