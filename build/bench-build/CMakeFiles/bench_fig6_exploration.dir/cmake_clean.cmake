file(REMOVE_RECURSE
  "../bench/bench_fig6_exploration"
  "../bench/bench_fig6_exploration.pdb"
  "CMakeFiles/bench_fig6_exploration.dir/bench_fig6_exploration.cpp.o"
  "CMakeFiles/bench_fig6_exploration.dir/bench_fig6_exploration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
