file(REMOVE_RECURSE
  "../bench/bench_ablation_lumping"
  "../bench/bench_ablation_lumping.pdb"
  "CMakeFiles/bench_ablation_lumping.dir/bench_ablation_lumping.cpp.o"
  "CMakeFiles/bench_ablation_lumping.dir/bench_ablation_lumping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lumping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
