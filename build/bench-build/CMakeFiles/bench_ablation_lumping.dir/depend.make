# Empty dependencies file for bench_ablation_lumping.
# This may be replaced when dependencies are built.
