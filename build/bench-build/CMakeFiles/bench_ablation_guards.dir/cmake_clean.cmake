file(REMOVE_RECURSE
  "../bench/bench_ablation_guards"
  "../bench/bench_ablation_guards.pdb"
  "CMakeFiles/bench_ablation_guards.dir/bench_ablation_guards.cpp.o"
  "CMakeFiles/bench_ablation_guards.dir/bench_ablation_guards.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
