file(REMOVE_RECURSE
  "../bench/bench_ablation_nmax"
  "../bench/bench_ablation_nmax.pdb"
  "CMakeFiles/bench_ablation_nmax.dir/bench_ablation_nmax.cpp.o"
  "CMakeFiles/bench_ablation_nmax.dir/bench_ablation_nmax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
