# Empty dependencies file for bench_table1_cvss.
# This may be replaced when dependencies are built.
