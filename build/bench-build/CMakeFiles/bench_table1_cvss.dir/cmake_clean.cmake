file(REMOVE_RECURSE
  "../bench/bench_table1_cvss"
  "../bench/bench_table1_cvss.pdb"
  "CMakeFiles/bench_table1_cvss.dir/bench_table1_cvss.cpp.o"
  "CMakeFiles/bench_table1_cvss.dir/bench_table1_cvss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cvss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
