file(REMOVE_RECURSE
  "../bench/bench_steady_example"
  "../bench/bench_steady_example.pdb"
  "CMakeFiles/bench_steady_example.dir/bench_steady_example.cpp.o"
  "CMakeFiles/bench_steady_example.dir/bench_steady_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_steady_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
