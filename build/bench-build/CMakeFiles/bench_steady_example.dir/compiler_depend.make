# Empty compiler generated dependencies file for bench_steady_example.
# This may be replaced when dependencies are built.
