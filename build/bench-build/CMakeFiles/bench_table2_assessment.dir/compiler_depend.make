# Empty compiler generated dependencies file for bench_table2_assessment.
# This may be replaced when dependencies are built.
