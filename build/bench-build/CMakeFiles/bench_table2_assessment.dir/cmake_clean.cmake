file(REMOVE_RECURSE
  "../bench/bench_table2_assessment"
  "../bench/bench_table2_assessment.pdb"
  "CMakeFiles/bench_table2_assessment.dir/bench_table2_assessment.cpp.o"
  "CMakeFiles/bench_table2_assessment.dir/bench_table2_assessment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
