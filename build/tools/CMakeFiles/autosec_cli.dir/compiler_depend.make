# Empty compiler generated dependencies file for autosec_cli.
# This may be replaced when dependencies are built.
