file(REMOVE_RECURSE
  "CMakeFiles/autosec_cli.dir/autosec_cli.cpp.o"
  "CMakeFiles/autosec_cli.dir/autosec_cli.cpp.o.d"
  "autosec"
  "autosec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
