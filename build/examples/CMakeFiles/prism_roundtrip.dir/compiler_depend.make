# Empty compiler generated dependencies file for prism_roundtrip.
# This may be replaced when dependencies are built.
