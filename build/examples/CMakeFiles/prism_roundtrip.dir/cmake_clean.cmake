file(REMOVE_RECURSE
  "CMakeFiles/prism_roundtrip.dir/prism_roundtrip.cpp.o"
  "CMakeFiles/prism_roundtrip.dir/prism_roundtrip.cpp.o.d"
  "prism_roundtrip"
  "prism_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prism_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
