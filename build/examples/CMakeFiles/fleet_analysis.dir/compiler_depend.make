# Empty compiler generated dependencies file for fleet_analysis.
# This may be replaced when dependencies are built.
