# Empty compiler generated dependencies file for custom_architecture.
# This may be replaced when dependencies are built.
