file(REMOVE_RECURSE
  "CMakeFiles/custom_architecture.dir/custom_architecture.cpp.o"
  "CMakeFiles/custom_architecture.dir/custom_architecture.cpp.o.d"
  "custom_architecture"
  "custom_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
