# Empty compiler generated dependencies file for parameter_exploration.
# This may be replaced when dependencies are built.
