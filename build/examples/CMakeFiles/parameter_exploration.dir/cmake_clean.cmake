file(REMOVE_RECURSE
  "CMakeFiles/parameter_exploration.dir/parameter_exploration.cpp.o"
  "CMakeFiles/parameter_exploration.dir/parameter_exploration.cpp.o.d"
  "parameter_exploration"
  "parameter_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
