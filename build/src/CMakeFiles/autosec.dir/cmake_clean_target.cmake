file(REMOVE_RECURSE
  "libautosec.a"
)
