# Empty dependencies file for autosec.
# This may be replaced when dependencies are built.
