
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assess/asil.cpp" "src/CMakeFiles/autosec.dir/assess/asil.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/assess/asil.cpp.o.d"
  "/root/repo/src/assess/cvss.cpp" "src/CMakeFiles/autosec.dir/assess/cvss.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/assess/cvss.cpp.o.d"
  "/root/repo/src/automotive/analyzer.cpp" "src/CMakeFiles/autosec.dir/automotive/analyzer.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/analyzer.cpp.o.d"
  "/root/repo/src/automotive/archfile.cpp" "src/CMakeFiles/autosec.dir/automotive/archfile.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/archfile.cpp.o.d"
  "/root/repo/src/automotive/architecture.cpp" "src/CMakeFiles/autosec.dir/automotive/architecture.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/architecture.cpp.o.d"
  "/root/repo/src/automotive/casestudy.cpp" "src/CMakeFiles/autosec.dir/automotive/casestudy.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/casestudy.cpp.o.d"
  "/root/repo/src/automotive/diagnostics.cpp" "src/CMakeFiles/autosec.dir/automotive/diagnostics.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/diagnostics.cpp.o.d"
  "/root/repo/src/automotive/transform.cpp" "src/CMakeFiles/autosec.dir/automotive/transform.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/automotive/transform.cpp.o.d"
  "/root/repo/src/cli/cli.cpp" "src/CMakeFiles/autosec.dir/cli/cli.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/cli/cli.cpp.o.d"
  "/root/repo/src/csl/checker.cpp" "src/CMakeFiles/autosec.dir/csl/checker.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/csl/checker.cpp.o.d"
  "/root/repo/src/csl/lumped.cpp" "src/CMakeFiles/autosec.dir/csl/lumped.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/csl/lumped.cpp.o.d"
  "/root/repo/src/csl/property.cpp" "src/CMakeFiles/autosec.dir/csl/property.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/csl/property.cpp.o.d"
  "/root/repo/src/csl/property_parser.cpp" "src/CMakeFiles/autosec.dir/csl/property_parser.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/csl/property_parser.cpp.o.d"
  "/root/repo/src/ctmc/ctmc.cpp" "src/CMakeFiles/autosec.dir/ctmc/ctmc.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/lumping.cpp" "src/CMakeFiles/autosec.dir/ctmc/lumping.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/lumping.cpp.o.d"
  "/root/repo/src/ctmc/poisson.cpp" "src/CMakeFiles/autosec.dir/ctmc/poisson.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/poisson.cpp.o.d"
  "/root/repo/src/ctmc/rewards.cpp" "src/CMakeFiles/autosec.dir/ctmc/rewards.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/rewards.cpp.o.d"
  "/root/repo/src/ctmc/scc.cpp" "src/CMakeFiles/autosec.dir/ctmc/scc.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/scc.cpp.o.d"
  "/root/repo/src/ctmc/simulation.cpp" "src/CMakeFiles/autosec.dir/ctmc/simulation.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/simulation.cpp.o.d"
  "/root/repo/src/ctmc/steady_state.cpp" "src/CMakeFiles/autosec.dir/ctmc/steady_state.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/steady_state.cpp.o.d"
  "/root/repo/src/ctmc/transient.cpp" "src/CMakeFiles/autosec.dir/ctmc/transient.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/ctmc/transient.cpp.o.d"
  "/root/repo/src/linalg/csr_matrix.cpp" "src/CMakeFiles/autosec.dir/linalg/csr_matrix.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/linalg/csr_matrix.cpp.o.d"
  "/root/repo/src/linalg/gauss_seidel.cpp" "src/CMakeFiles/autosec.dir/linalg/gauss_seidel.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/linalg/gauss_seidel.cpp.o.d"
  "/root/repo/src/linalg/power_iteration.cpp" "src/CMakeFiles/autosec.dir/linalg/power_iteration.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/linalg/power_iteration.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/autosec.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/symbolic/builder.cpp" "src/CMakeFiles/autosec.dir/symbolic/builder.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/builder.cpp.o.d"
  "/root/repo/src/symbolic/dot.cpp" "src/CMakeFiles/autosec.dir/symbolic/dot.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/dot.cpp.o.d"
  "/root/repo/src/symbolic/explorer.cpp" "src/CMakeFiles/autosec.dir/symbolic/explorer.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/explorer.cpp.o.d"
  "/root/repo/src/symbolic/expr.cpp" "src/CMakeFiles/autosec.dir/symbolic/expr.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/expr.cpp.o.d"
  "/root/repo/src/symbolic/lexer.cpp" "src/CMakeFiles/autosec.dir/symbolic/lexer.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/lexer.cpp.o.d"
  "/root/repo/src/symbolic/model.cpp" "src/CMakeFiles/autosec.dir/symbolic/model.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/model.cpp.o.d"
  "/root/repo/src/symbolic/parser.cpp" "src/CMakeFiles/autosec.dir/symbolic/parser.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/parser.cpp.o.d"
  "/root/repo/src/symbolic/writer.cpp" "src/CMakeFiles/autosec.dir/symbolic/writer.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/symbolic/writer.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/autosec.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "src/CMakeFiles/autosec.dir/util/stopwatch.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/autosec.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/autosec.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/autosec.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
