# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_ctmc[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_csl[1]_include.cmake")
include("/root/repo/build/tests/test_assess[1]_include.cmake")
include("/root/repo/build/tests/test_automotive[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
