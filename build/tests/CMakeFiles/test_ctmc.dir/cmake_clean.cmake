file(REMOVE_RECURSE
  "CMakeFiles/test_ctmc.dir/ctmc/test_ctmc.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_ctmc.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_lumping.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_lumping.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_poisson.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_poisson.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_properties_random.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_properties_random.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_rewards.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_rewards.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_scc.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_scc.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_simulation.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_simulation.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_steady_state.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_steady_state.cpp.o.d"
  "CMakeFiles/test_ctmc.dir/ctmc/test_transient.cpp.o"
  "CMakeFiles/test_ctmc.dir/ctmc/test_transient.cpp.o.d"
  "test_ctmc"
  "test_ctmc.pdb"
  "test_ctmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
