
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ctmc/test_ctmc.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_ctmc.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_ctmc.cpp.o.d"
  "/root/repo/tests/ctmc/test_lumping.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_lumping.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_lumping.cpp.o.d"
  "/root/repo/tests/ctmc/test_poisson.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_poisson.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_poisson.cpp.o.d"
  "/root/repo/tests/ctmc/test_properties_random.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_properties_random.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_properties_random.cpp.o.d"
  "/root/repo/tests/ctmc/test_rewards.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_rewards.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_rewards.cpp.o.d"
  "/root/repo/tests/ctmc/test_scc.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_scc.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_scc.cpp.o.d"
  "/root/repo/tests/ctmc/test_simulation.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_simulation.cpp.o.d"
  "/root/repo/tests/ctmc/test_steady_state.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_steady_state.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_steady_state.cpp.o.d"
  "/root/repo/tests/ctmc/test_transient.cpp" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_transient.cpp.o" "gcc" "tests/CMakeFiles/test_ctmc.dir/ctmc/test_transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autosec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
