file(REMOVE_RECURSE
  "CMakeFiles/test_csl.dir/csl/test_bounds.cpp.o"
  "CMakeFiles/test_csl.dir/csl/test_bounds.cpp.o.d"
  "CMakeFiles/test_csl.dir/csl/test_checker.cpp.o"
  "CMakeFiles/test_csl.dir/csl/test_checker.cpp.o.d"
  "CMakeFiles/test_csl.dir/csl/test_interval_bounds.cpp.o"
  "CMakeFiles/test_csl.dir/csl/test_interval_bounds.cpp.o.d"
  "CMakeFiles/test_csl.dir/csl/test_lumped.cpp.o"
  "CMakeFiles/test_csl.dir/csl/test_lumped.cpp.o.d"
  "CMakeFiles/test_csl.dir/csl/test_property_parser.cpp.o"
  "CMakeFiles/test_csl.dir/csl/test_property_parser.cpp.o.d"
  "test_csl"
  "test_csl.pdb"
  "test_csl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
