
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/symbolic/test_dot.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_dot.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_dot.cpp.o.d"
  "/root/repo/tests/symbolic/test_explorer.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_explorer.cpp.o.d"
  "/root/repo/tests/symbolic/test_explorer_reference.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_explorer_reference.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_explorer_reference.cpp.o.d"
  "/root/repo/tests/symbolic/test_expr.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_expr.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_expr.cpp.o.d"
  "/root/repo/tests/symbolic/test_lexer.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_lexer.cpp.o.d"
  "/root/repo/tests/symbolic/test_model_compile.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_model_compile.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_model_compile.cpp.o.d"
  "/root/repo/tests/symbolic/test_parser.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_parser.cpp.o.d"
  "/root/repo/tests/symbolic/test_parser_fuzz.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_parser_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_parser_fuzz.cpp.o.d"
  "/root/repo/tests/symbolic/test_simplify.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_simplify.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_simplify.cpp.o.d"
  "/root/repo/tests/symbolic/test_writer_roundtrip.cpp" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_writer_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/test_symbolic.dir/symbolic/test_writer_roundtrip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autosec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
