file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic.dir/symbolic/test_dot.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_dot.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_explorer.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_explorer.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_explorer_reference.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_explorer_reference.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_expr.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_expr.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_lexer.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_lexer.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_model_compile.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_model_compile.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_parser.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_parser.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_parser_fuzz.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_parser_fuzz.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_simplify.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_simplify.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_writer_roundtrip.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_writer_roundtrip.cpp.o.d"
  "test_symbolic"
  "test_symbolic.pdb"
  "test_symbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
