file(REMOVE_RECURSE
  "CMakeFiles/test_automotive.dir/automotive/test_analyzer.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_analyzer.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_archfile.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_archfile.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_architecture.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_architecture.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_casestudy.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_casestudy.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_diagnostics.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_extensions.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_extensions.cpp.o.d"
  "CMakeFiles/test_automotive.dir/automotive/test_transform.cpp.o"
  "CMakeFiles/test_automotive.dir/automotive/test_transform.cpp.o.d"
  "test_automotive"
  "test_automotive.pdb"
  "test_automotive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automotive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
