# Empty compiler generated dependencies file for test_automotive.
# This may be replaced when dependencies are built.
