
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/automotive/test_analyzer.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_analyzer.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_analyzer.cpp.o.d"
  "/root/repo/tests/automotive/test_archfile.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_archfile.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_archfile.cpp.o.d"
  "/root/repo/tests/automotive/test_architecture.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_architecture.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_architecture.cpp.o.d"
  "/root/repo/tests/automotive/test_casestudy.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_casestudy.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_casestudy.cpp.o.d"
  "/root/repo/tests/automotive/test_diagnostics.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_diagnostics.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_diagnostics.cpp.o.d"
  "/root/repo/tests/automotive/test_extensions.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_extensions.cpp.o.d"
  "/root/repo/tests/automotive/test_transform.cpp" "tests/CMakeFiles/test_automotive.dir/automotive/test_transform.cpp.o" "gcc" "tests/CMakeFiles/test_automotive.dir/automotive/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autosec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
