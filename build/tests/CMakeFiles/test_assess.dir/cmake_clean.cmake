file(REMOVE_RECURSE
  "CMakeFiles/test_assess.dir/assess/test_asil.cpp.o"
  "CMakeFiles/test_assess.dir/assess/test_asil.cpp.o.d"
  "CMakeFiles/test_assess.dir/assess/test_cvss.cpp.o"
  "CMakeFiles/test_assess.dir/assess/test_cvss.cpp.o.d"
  "test_assess"
  "test_assess.pdb"
  "test_assess[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
