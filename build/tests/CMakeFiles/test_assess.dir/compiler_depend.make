# Empty compiler generated dependencies file for test_assess.
# This may be replaced when dependencies are built.
