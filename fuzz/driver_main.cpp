// Standalone replay driver: runs each file argument through the linked
// harness's LLVMFuzzerTestOneInput once. This is the gcc-friendly build of
// the fuzz targets — no libFuzzer needed — used by the corpus replay tests
// and for reproducing crash inputs saved by a coverage-guided run.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s input-file...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("replayed %d inputs\n", argc - 1);
  return 0;
}
