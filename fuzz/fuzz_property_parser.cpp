// libFuzzer harness for the CSL property parser. Malformed property text
// must be rejected with PropertyError (or a lexer/parser error from the
// shared expression layer); everything else is a finding.
#include <cstdint>
#include <string>

#include "csl/property.hpp"
#include "csl/property_parser.hpp"
#include "symbolic/lexer.hpp"
#include "symbolic/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)autosec::csl::parse_property(text);
  } catch (const autosec::csl::PropertyError&) {
  } catch (const autosec::symbolic::LexError&) {
  } catch (const autosec::symbolic::ParseError&) {
  }
  return 0;
}
