// libFuzzer harness for the PRISM-subset lexer and model parser. Any byte
// string may be rejected with a parse-layer error; an input that parses must
// additionally survive the writer → parser round-trip with a textual
// fixpoint (the same invariant the differential harness enforces on
// generated models). Anything else — crash, sanitizer report, uncaught
// exception, broken fixpoint — is a finding.
#include <cstdint>
#include <string>

#include "symbolic/lexer.hpp"
#include "symbolic/model.hpp"
#include "symbolic/parser.hpp"
#include "symbolic/writer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  autosec::symbolic::Model model;
  try {
    model = autosec::symbolic::parse_model(text);
  } catch (const autosec::symbolic::LexError&) {
    return 0;
  } catch (const autosec::symbolic::ParseError&) {
    return 0;
  } catch (const autosec::symbolic::ModelError&) {
    return 0;
  } catch (const autosec::symbolic::EvalError&) {
    return 0;
  }
  // Accepted input: the writer must emit text the parser accepts again, and
  // writing the reparse must reproduce that text exactly.
  const std::string once = autosec::symbolic::write_model(model);
  const std::string twice =
      autosec::symbolic::write_model(autosec::symbolic::parse_model(once));
  if (once != twice) __builtin_trap();
  return 0;
}
