// libFuzzer harness for the .arch architecture-file loader. Malformed input
// must be rejected with ArchFileError (or ArchitectureError from validation);
// an accepted architecture must survive the writer → parser round-trip with
// a textual fixpoint.
#include <cstdint>
#include <string>

#include "automotive/architecture.hpp"
#include "automotive/archfile.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  autosec::automotive::Architecture arch;
  try {
    arch = autosec::automotive::parse_architecture(text);
  } catch (const autosec::automotive::ArchFileError&) {
    return 0;
  } catch (const autosec::automotive::ArchitectureError&) {
    return 0;
  }
  const std::string once = autosec::automotive::write_architecture(arch);
  const std::string twice = autosec::automotive::write_architecture(
      autosec::automotive::parse_architecture(once));
  if (once != twice) __builtin_trap();
  return 0;
}
