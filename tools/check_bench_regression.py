#!/usr/bin/env python3
"""Bench regression gate for CI.

Compares the BENCH_*.json metrics files a bench run just produced against the
committed baselines in bench/baselines/:

  * wall time (gauge ``bench.wall_seconds``) must not regress by more than
    --max-slowdown (default 1.25, i.e. +25%);
  * every ``bench.agreement_*`` gauge — the cross-engine result agreement
    recorded by the bench itself, as |a-b| / max(1, |a|, |b|) — must stay
    within --agreement-tolerance (default 1e-8), regardless of the baseline;
  * the ``bench.fault_overhead_fraction`` gauge, when a bench records one —
    the estimated cost of disarmed fault-injection hooks as a fraction of
    engine wall time — must stay below --fault-overhead-limit (default 0.02);
  * the ``bench.checkpoint_overhead_fraction`` gauge, when a bench records
    one — snapshot persists x micro-measured per-persist cost as a fraction
    of the checkpointed pass's wall time — must stay below
    --checkpoint-overhead-limit (default 0.02);
  * peak resident memory (gauge ``bench.peak_rss_mb``) must not grow by more
    than --max-rss-growth (default 1.5, i.e. +50%) over the baseline;
  * per-state storage (gauge ``explore.bytes_per_state``, recorded by the
    engine session for the last explored space) must not grow by more than
    --max-bytes-per-state-growth (default 1.1) over the baseline — the guard
    that keeps the compact exploration engine compact;
  * solve-kernel throughput (gauge ``solve.mat_vec_per_sec``, matrix-vector
    products over the solve span) must not fall below
    --min-throughput-fraction (default 0.75) of the baseline — the guard
    that keeps the SELL/colored-GS kernel work from quietly regressing.

Memory gates are skipped for baselines that predate the gauge (refresh the
baseline to arm them).

Exit status 0 when everything holds, 1 with a per-file report otherwise.
Baselines are refreshed by re-running the benches with
``AUTOSEC_BENCH_DIR=bench/baselines`` on a quiet machine (see
docs/testing.md).
"""

import argparse
import json
import pathlib
import sys

WALL_GAUGE = "bench.wall_seconds"
AGREEMENT_PREFIX = "bench.agreement_"
FAULT_OVERHEAD_GAUGE = "bench.fault_overhead_fraction"
CHECKPOINT_OVERHEAD_GAUGE = "bench.checkpoint_overhead_fraction"
RSS_GAUGE = "bench.peak_rss_mb"
BYTES_PER_STATE_GAUGE = "explore.bytes_per_state"
THROUGHPUT_GAUGE = "solve.mat_vec_per_sec"


def check_throughput_floor(name, baseline, current, fraction, failures):
    """Gate solve throughput against a fraction of the baseline (higher is
    better, so this is a floor, not a growth ceiling)."""
    base_value = baseline.get(THROUGHPUT_GAUGE)
    cur_value = current.get(THROUGHPUT_GAUGE)
    if base_value is None or base_value <= 0:
        return  # baseline predates the gauge: nothing to compare against
    if cur_value is None:
        failures.append(f"{name}: {THROUGHPUT_GAUGE} gauge missing from current run")
        return
    ratio = cur_value / base_value
    status = "ok" if ratio >= fraction else "REGRESSION"
    print(f"{name}: {THROUGHPUT_GAUGE} {cur_value:.0f} vs baseline "
          f"{base_value:.0f} ({ratio:.2f}x) {status}")
    if ratio < fraction:
        failures.append(
            f"{name}: {THROUGHPUT_GAUGE} {cur_value:.0f} is only {ratio:.2f}x "
            f"the baseline {base_value:.0f} (floor {fraction:.2f}x)")


def check_growth_ratio(name, gauge, baseline, current, limit, failures):
    """Gate a gauge's current/baseline ratio; skip when the baseline lacks it."""
    base_value = baseline.get(gauge)
    cur_value = current.get(gauge)
    if base_value is None or base_value <= 0:
        return  # baseline predates the gauge: nothing to compare against
    if cur_value is None:
        failures.append(f"{name}: {gauge} gauge missing from current run")
        return
    ratio = cur_value / base_value
    status = "ok" if ratio <= limit else "REGRESSION"
    print(f"{name}: {gauge} {cur_value:.1f} vs baseline "
          f"{base_value:.1f} ({ratio:.2f}x) {status}")
    if ratio > limit:
        failures.append(
            f"{name}: {gauge} {cur_value:.1f} is {ratio:.2f}x the "
            f"baseline {base_value:.1f} (limit {limit:.2f}x)")


def load_gauges(path):
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != "autosec-metrics-v1":
        raise ValueError(f"{path}: unexpected schema {data.get('schema')!r}")
    return data.get("gauges", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--current-dir", required=True,
                        help="directory with the BENCH_*.json files of this run")
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="allowed wall-time ratio current/baseline")
    parser.add_argument("--agreement-tolerance", type=float, default=1e-8,
                        help="bound on every bench.agreement_* gauge")
    parser.add_argument("--fault-overhead-limit", type=float, default=0.02,
                        help="bound on bench.fault_overhead_fraction when present")
    parser.add_argument("--checkpoint-overhead-limit", type=float, default=0.02,
                        help="bound on bench.checkpoint_overhead_fraction "
                             "when present")
    parser.add_argument("--max-rss-growth", type=float, default=1.5,
                        help="allowed peak-RSS ratio current/baseline")
    parser.add_argument("--max-bytes-per-state-growth", type=float, default=1.1,
                        help="allowed explore.bytes_per_state ratio "
                             "current/baseline")
    parser.add_argument("--min-throughput-fraction", type=float, default=0.75,
                        help="floor on solve.mat_vec_per_sec as a fraction of "
                             "the baseline")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline_dir)
    current_dir = pathlib.Path(args.current_dir)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        if not current_path.exists():
            failures.append(f"{baseline_path.name}: missing from {current_dir} "
                            "(bench did not run?)")
            continue
        baseline = load_gauges(baseline_path)
        current = load_gauges(current_path)

        base_wall = baseline.get(WALL_GAUGE)
        cur_wall = current.get(WALL_GAUGE)
        if base_wall is None or cur_wall is None:
            failures.append(f"{baseline_path.name}: {WALL_GAUGE} gauge missing")
        else:
            ratio = cur_wall / base_wall if base_wall > 0 else float("inf")
            status = "ok" if ratio <= args.max_slowdown else "REGRESSION"
            print(f"{baseline_path.name}: wall {cur_wall:.3f}s vs baseline "
                  f"{base_wall:.3f}s ({ratio:.2f}x) {status}")
            if ratio > args.max_slowdown:
                failures.append(
                    f"{baseline_path.name}: wall time {cur_wall:.3f}s is "
                    f"{ratio:.2f}x the baseline {base_wall:.3f}s "
                    f"(limit {args.max_slowdown:.2f}x)")

        for name, value in sorted(current.items()):
            if not name.startswith(AGREEMENT_PREFIX):
                continue
            status = "ok" if value <= args.agreement_tolerance else "DISAGREEMENT"
            print(f"{baseline_path.name}: {name} = {value:.3g} {status}")
            if value > args.agreement_tolerance:
                failures.append(
                    f"{baseline_path.name}: {name} = {value:.3g} exceeds "
                    f"{args.agreement_tolerance:.3g}")

        check_growth_ratio(baseline_path.name, RSS_GAUGE, baseline, current,
                           args.max_rss_growth, failures)
        check_growth_ratio(baseline_path.name, BYTES_PER_STATE_GAUGE, baseline,
                           current, args.max_bytes_per_state_growth, failures)
        check_throughput_floor(baseline_path.name, baseline, current,
                               args.min_throughput_fraction, failures)

        fault_overhead = current.get(FAULT_OVERHEAD_GAUGE)
        if fault_overhead is not None:
            status = ("ok" if fault_overhead <= args.fault_overhead_limit
                      else "OVERHEAD")
            print(f"{baseline_path.name}: {FAULT_OVERHEAD_GAUGE} = "
                  f"{fault_overhead:.3g} {status}")
            if fault_overhead > args.fault_overhead_limit:
                failures.append(
                    f"{baseline_path.name}: {FAULT_OVERHEAD_GAUGE} = "
                    f"{fault_overhead:.3g} exceeds disarmed-hook budget "
                    f"{args.fault_overhead_limit:.3g}")

        checkpoint_overhead = current.get(CHECKPOINT_OVERHEAD_GAUGE)
        if checkpoint_overhead is not None:
            status = ("ok" if checkpoint_overhead <= args.checkpoint_overhead_limit
                      else "OVERHEAD")
            print(f"{baseline_path.name}: {CHECKPOINT_OVERHEAD_GAUGE} = "
                  f"{checkpoint_overhead:.3g} {status}")
            if checkpoint_overhead > args.checkpoint_overhead_limit:
                failures.append(
                    f"{baseline_path.name}: {CHECKPOINT_OVERHEAD_GAUGE} = "
                    f"{checkpoint_overhead:.3g} exceeds checkpoint budget "
                    f"{args.checkpoint_overhead_limit:.3g}")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
