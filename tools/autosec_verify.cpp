// autosec-verify: randomized differential-testing front end. Generates
// seeded random models/architectures and cross-checks the staged engine
// against the dense oracle, the alternate solver, the lumped quotient, the
// parallel backend, and the writer/parser round-trips. Exits nonzero when
// any differential check fails; every failure prints the seed that
// reproduces it via `autosec-verify --seed <N> --iterations 1`.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "testing/differential.hpp"
#include "testing/fault_check.hpp"
#include "util/numeric.hpp"
#include "util/stopwatch.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: autosec-verify [options]\n"
        "  --iterations N     differential iterations (default 100)\n"
        "  --seed S           base seed; iteration i uses seed S+i (default 1)\n"
        "  --tolerance X      engine-vs-oracle tolerance (default 1e-8)\n"
        "  --max-states N     dense-oracle state limit (default 200)\n"
        "  --threads N        thread count of the parallel leg (default 4)\n"
        "  --skip FAMILY      disable a family: oracle, solvers, kernels,\n"
        "                     lumping, parallel, roundtrip, engine, mdp,\n"
        "                     checkpoint (repeatable)\n"
        "  --faults           run the fault-injection checks instead: arm every\n"
        "                     known fault site and prove each yields a structured\n"
        "                     error (and serve keeps serving)\n"
        "  --list             list check families and exit\n"
        "  --help             this text\n";
}

[[noreturn]] void fail_usage(const std::string& message) {
  std::cerr << "autosec-verify: " << message << "\n";
  print_usage(std::cerr);
  std::exit(2);
}

uint64_t parse_count(const std::string& text, const std::string& flag) {
  const std::optional<int64_t> value = autosec::util::parse_int(text);
  if (!value.has_value() || *value < 0) fail_usage("bad value for " + flag);
  return static_cast<uint64_t>(*value);
}

}  // namespace

int main(int argc, char** argv) {
  autosec::testing::DifferentialOptions options;
  bool run_faults = false;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](const char* what) -> const std::string& {
      if (i + 1 >= args.size()) fail_usage(std::string("missing ") + what);
      return args[++i];
    };
    if (arg == "--iterations") {
      options.iterations = parse_count(next("--iterations value"), arg);
    } else if (arg == "--seed") {
      options.seed = parse_count(next("--seed value"), arg);
    } else if (arg == "--tolerance") {
      const std::optional<double> value =
          autosec::util::parse_double(next("--tolerance value"));
      if (!value.has_value() || *value <= 0) fail_usage("bad value for --tolerance");
      options.tolerance = *value;
    } else if (arg == "--max-states") {
      options.oracle_max_states = parse_count(next("--max-states value"), arg);
    } else if (arg == "--threads") {
      options.parallel_threads = std::max<uint64_t>(1, parse_count(next("--threads value"), arg));
    } else if (arg == "--skip") {
      const std::string& family = next("--skip family");
      if (family == "oracle") {
        options.check_oracle = false;
      } else if (family == "solvers") {
        options.check_solvers = false;
      } else if (family == "kernels") {
        options.check_kernels = false;
      } else if (family == "lumping") {
        options.check_lumping = false;
      } else if (family == "parallel") {
        options.check_parallel = false;
      } else if (family == "roundtrip") {
        options.check_roundtrip = false;
      } else if (family == "engine") {
        options.check_engine = false;
      } else if (family == "mdp") {
        options.check_mdp = false;
      } else if (family == "checkpoint") {
        options.check_checkpoint = false;
      } else {
        fail_usage("unknown family '" + family + "'");
      }
    } else if (arg == "--faults") {
      run_faults = true;
    } else if (arg == "--list") {
      std::cout << "oracle     transient/steady/reward/reachability vs dense expm oracle\n"
                   "solvers    Krylov-first vs pure Gauss-Seidel fixpoint solves\n"
                   "kernels    blocked SELL-C-sigma vs CSR transient kernel (bit-exact),\n"
                   "           multicolor vs direct Gauss-Seidel sweeps, and\n"
                   "           RCM-reordered vs natural-order solves\n"
                   "lumping    lumped-quotient checking vs the full state space\n"
                   "parallel   1-thread vs N-thread batch solves (bit-exact)\n"
                   "roundtrip  writer -> parser identity for models and .arch files\n"
                   "engine     compact vs classic state store (bit-exact) and the\n"
                   "           symmetry-reduced quotient vs the full space\n"
                   "mdp        MDP value iteration vs the exhaustive scheduler-\n"
                   "           enumeration oracle, and interval-iteration brackets\n"
                   "           vs the plain fixpoint\n"
                   "checkpoint a run recording into a checkpoint ledger vs a second\n"
                   "           run resuming from the persisted snapshot (bit-exact\n"
                   "           replay, no recomputation)\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else {
      fail_usage("unknown argument '" + arg + "'");
    }
  }

  if (run_faults) {
    autosec::util::Stopwatch watch;
    const autosec::testing::FaultCheckReport report =
        autosec::testing::run_fault_checks();
    std::cout << report.summary();
    std::cout << "wall time: " << watch.elapsed_seconds() << " s\n";
    if (!report.ok()) {
      std::cout << "fault-injection verification FAILED\n";
      return 1;
    }
    std::cout << "fault-injection verification OK\n";
    return 0;
  }

  autosec::util::Stopwatch watch;
  const autosec::testing::DifferentialReport report =
      autosec::testing::run_differential(options);
  std::cout << report.summary();
  std::cout << "wall time: " << watch.elapsed_seconds() << " s\n";
  if (!report.ok()) {
    std::cout << "\nFAILURES (reproduce with --seed <N> --iterations 1):\n";
    for (const std::string& failure : report.failures) {
      std::cout << "  " << failure << "\n";
    }
    std::cout << "differential verification FAILED\n";
    return 1;
  }
  std::cout << "differential verification OK\n";
  return 0;
}
