#!/usr/bin/env python3
"""Concurrent load generator for `autosec serve` — the CI scale-out driver.

Connects N clients to a running server (TCP or Unix socket), streams NDJSON
v1 requests from each, and verifies the fleet-level invariants the serve
layer promises:

  * integrity (always on): every request id is answered exactly once, every
    envelope parses, and every response is ok (a structured `overloaded`
    shed fails the run unless --allow-overloaded is given);
  * --assert-warm-hits: after a cold round that touches every architecture,
    a warm round must answer every request from a cache (session_cache or
    disk_cache "hit") with explores 0 — the digest-sharding proof (repeats
    land on the worker that already explored the model);
  * --kill-pid P --kill-after N: once N responses have arrived across all
    clients, send SIGKILL to pid P (a pre-fork worker) and keep going — the
    respawn proof is simply that integrity still holds.

Request ids are deterministic ("c<client>-r<round>-<n>"), so a response file
captured with --responses-out can be compared across transports. The
companion mode

    serve_loadgen.py extract RESPONSES.ndjson

prints "id<TAB>result" lines (results canonicalised by Python's json module)
sorted by id, so `diff` can prove the TCP fleet returned the same payloads
as a one-shot --input run. Stdlib only; exit 0 = every assertion held.
"""

import argparse
import json
import signal
import socket
import sys
import threading


def parse_connect(text):
    if text.startswith("tcp:"):
        host, _, port = text[4:].rpartition(":")
        return ("tcp", host or "127.0.0.1", int(port))
    if text.startswith("unix:"):
        return ("unix", text[5:], None)
    raise SystemExit(f"serve_loadgen: bad --connect '{text}' "
                     "(use tcp:HOST:PORT or unix:PATH)")


def connect(target):
    kind, host, port = target
    if kind == "tcp":
        return socket.create_connection((host, port), timeout=60)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(60)
    sock.connect(host)
    return sock


class Killer:
    """Fires SIGKILL at `pid` once, after `after` total responses."""

    def __init__(self, pid, after):
        self.pid = pid
        self.after = after
        self.count = 0
        self.fired = False
        self.lock = threading.Lock()

    def on_response(self):
        if self.pid is None:
            return
        with self.lock:
            self.count += 1
            if self.fired or self.count < self.after:
                return
            self.fired = True
        print(f"serve_loadgen: kill -9 {self.pid} "
              f"after {self.count} responses", flush=True)
        try:
            import os
            os.kill(self.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass


class Client(threading.Thread):
    def __init__(self, index, target, args, killer):
        super().__init__(name=f"client-{index}")
        self.index = index
        self.target = target
        self.args = args
        self.killer = killer
        self.responses = []  # parsed envelopes, arrival order
        self.errors = []

    def fail(self, message):
        self.errors.append(f"client {self.index}: {message}")

    def request_line(self, round_name, n, arch):
        rid = f"c{self.index}-r{round_name}-{n}"
        return rid, json.dumps(
            {"id": rid, "op": "analyze", "architecture": arch},
            separators=(", ", ": "))

    def run_round(self, sock, reader, round_name, expect_warm):
        pending = {}
        lines = []
        for n in range(self.args.requests):
            arch = self.args.arch[n % len(self.args.arch)]
            rid, line = self.request_line(round_name, n, arch)
            pending[rid] = True
            lines.append(line)
        sock.sendall(("\n".join(lines) + "\n").encode())
        while pending:
            raw = reader.readline()
            if not raw:
                self.fail(f"connection closed with {len(pending)} "
                          "responses outstanding")
                return
            try:
                envelope = json.loads(raw)
            except json.JSONDecodeError as error:
                self.fail(f"unparseable response: {error}: {raw[:200]!r}")
                return
            rid = envelope.get("id", "")
            if rid not in pending:
                self.fail(f"unexpected or duplicated response id '{rid}'")
                return
            del pending[rid]
            self.responses.append(envelope)
            self.killer.on_response()
            if not envelope.get("ok", False):
                code = envelope.get("error", {}).get("code", "?")
                if code == "overloaded" and self.args.allow_overloaded:
                    continue
                self.fail(f"response '{rid}' not ok (code {code}): "
                          f"{raw[:200]!r}")
                return
            if expect_warm and self.args.assert_warm_hits:
                metrics = envelope.get("metrics", {})
                cached = (metrics.get("session_cache") == "hit"
                          or metrics.get("disk_cache") == "hit")
                if not cached or metrics.get("explores") != 0:
                    self.fail(f"warm response '{rid}' missed both caches: "
                              f"{metrics}")
                    return

    def run(self):
        try:
            sock = connect(self.target)
        except OSError as error:
            self.fail(f"cannot connect: {error}")
            return
        try:
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            self.run_round(sock, reader, "cold", expect_warm=False)
            if not self.errors and self.args.warm_rounds > 0:
                for warm in range(self.args.warm_rounds):
                    self.run_round(sock, reader, f"warm{warm}",
                                   expect_warm=True)
                    if self.errors:
                        break
        finally:
            sock.close()


def run_extract(path):
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            envelope = json.loads(line)
            result = json.dumps(envelope.get("result"), sort_keys=True)
            rows.append((envelope.get("id", ""), result))
    for rid, result in sorted(rows):
        print(f"{rid}\t{result}")
    return 0


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "extract":
        if len(sys.argv) != 3:
            raise SystemExit("usage: serve_loadgen.py extract FILE.ndjson")
        return run_extract(sys.argv[2])

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connect", required=True,
                        help="tcp:HOST:PORT or unix:PATH")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per round")
    parser.add_argument("--arch", action="append", required=True,
                        help="architecture file (repeatable; round-robined)")
    parser.add_argument("--warm-rounds", type=int, default=1)
    parser.add_argument("--assert-warm-hits", action="store_true",
                        help="warm rounds must report a session or disk "
                             "cache hit and explores=0")
    parser.add_argument("--allow-overloaded", action="store_true")
    parser.add_argument("--kill-pid", type=int, default=None)
    parser.add_argument("--kill-after", type=int, default=0,
                        help="responses to wait for before --kill-pid fires")
    parser.add_argument("--responses-out", default=None,
                        help="write every response envelope (NDJSON) here")
    parser.add_argument("--requests-out", default=None,
                        help="write the exact request lines this run sends "
                             "(NDJSON) — replay them through `autosec serve "
                             "--input` to compare transports")
    args = parser.parse_args()

    if args.requests_out:
        # The same deterministic ids the clients will use, so a one-shot
        # --input replay produces comparable envelopes.
        rounds = ["cold"] + [f"warm{w}" for w in range(args.warm_rounds)]
        with open(args.requests_out, "w", encoding="utf-8") as out:
            for index in range(args.clients):
                for round_name in rounds:
                    for n in range(args.requests):
                        arch = args.arch[n % len(args.arch)]
                        out.write(json.dumps(
                            {"id": f"c{index}-r{round_name}-{n}",
                             "op": "analyze", "architecture": arch},
                            separators=(", ", ": ")) + "\n")

    target = parse_connect(args.connect)
    killer = Killer(args.kill_pid, args.kill_after)
    clients = [Client(i, target, args, killer) for i in range(args.clients)]
    for client in clients:
        client.start()
    for client in clients:
        client.join()

    responses = [r for client in clients for r in client.responses]
    if args.responses_out:
        with open(args.responses_out, "w", encoding="utf-8") as out:
            for envelope in responses:
                out.write(json.dumps(envelope, sort_keys=True) + "\n")

    errors = [e for client in clients for e in client.errors]
    expected = args.clients * args.requests * (1 + max(args.warm_rounds, 0))
    for error in errors:
        print(f"serve_loadgen: FAIL: {error}", file=sys.stderr)
    if not errors and len(responses) != expected:
        print(f"serve_loadgen: FAIL: expected {expected} responses, "
              f"got {len(responses)}", file=sys.stderr)
        errors.append("response count")
    if errors:
        return 1
    hits = sum(1 for r in responses
               if r.get("metrics", {}).get("session_cache") == "hit")
    disk_hits = sum(1 for r in responses
                    if r.get("metrics", {}).get("disk_cache") == "hit")
    print(f"serve_loadgen: OK — {len(responses)} responses across "
          f"{args.clients} clients, {hits} session-cache hits, "
          f"{disk_hits} disk-cache hits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
