#!/usr/bin/env python3
"""Concurrent load generator for `autosec serve` — the CI scale-out driver.

Connects N clients to a running server (TCP or Unix socket), streams NDJSON
v1 requests from each, and verifies the fleet-level invariants the serve
layer promises:

  * integrity (always on): every request id is answered exactly once, every
    envelope parses, and every response is ok (a structured `overloaded`
    shed fails the run unless --allow-overloaded or --retry-overloaded is
    given);
  * --assert-warm-hits: after a cold round that touches every architecture,
    a warm round must answer every request from a cache (session_cache or
    disk_cache "hit") with explores 0 — the digest-sharding proof (repeats
    land on the worker that already explored the model);
  * --retry-overloaded: a shed request is retried after the server's own
    retry_after_ms hint with capped exponential backoff (hint * 2^attempt,
    capped at --retry-cap-ms), up to --max-retries times — the polite-client
    protocol docs/serving.md prescribes;
  * --kill-pid P --kill-after N: once N responses have arrived across all
    clients, send SIGKILL to pid P (a pre-fork worker) and keep going — the
    respawn proof is simply that integrity still holds;
  * --chaos: a background saboteur injects faults for the whole run —
    SIGKILLs a random live worker (children of --chaos-parent, re-read from
    /proc each event so respawned workers are fair game), SIGHUPs the
    supervisor mid-load (hot config reload), and corrupts random disk-cache
    entries under --chaos-corrupt-dir. The run then asserts the crash-
    durability contract: no lost or duplicated envelopes, and every ok
    response for the same (op, architecture) request carries a bit-identical
    `result` payload — whether it was computed fresh, replayed from a
    checkpoint, or served by a respawned worker.

Request ids are deterministic ("c<client>-r<round>-<n>"), so a response file
captured with --responses-out can be compared across transports. The
companion mode

    serve_loadgen.py extract RESPONSES.ndjson

prints "id<TAB>result" lines (results canonicalised by Python's json module)
sorted by id, so `diff` can prove the TCP fleet returned the same payloads
as a one-shot --input run. Stdlib only; exit 0 = every assertion held.
"""

import argparse
import json
import os
import random
import signal
import socket
import sys
import threading
import time


def parse_connect(text):
    if text.startswith("tcp:"):
        host, _, port = text[4:].rpartition(":")
        return ("tcp", host or "127.0.0.1", int(port))
    if text.startswith("unix:"):
        return ("unix", text[5:], None)
    raise SystemExit(f"serve_loadgen: bad --connect '{text}' "
                     "(use tcp:HOST:PORT or unix:PATH)")


def connect(target):
    kind, host, port = target
    if kind == "tcp":
        return socket.create_connection((host, port), timeout=120)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(120)
    sock.connect(host)
    return sock


class Killer:
    """Fires SIGKILL at `pid` once, after `after` total responses."""

    def __init__(self, pid, after):
        self.pid = pid
        self.after = after
        self.count = 0
        self.fired = False
        self.lock = threading.Lock()

    def on_response(self):
        if self.pid is None:
            return
        with self.lock:
            self.count += 1
            if self.fired or self.count < self.after:
                return
            self.fired = True
        print(f"serve_loadgen: kill -9 {self.pid} "
              f"after {self.count} responses", flush=True)
        try:
            os.kill(self.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass


def live_children(pid):
    """Pids of `pid`'s current children (Linux /proc; respawn-aware)."""
    children = []
    task_dir = f"/proc/{pid}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return children
    for tid in tids:
        try:
            with open(f"{task_dir}/{tid}/children", encoding="ascii") as f:
                children.extend(int(c) for c in f.read().split())
        except (OSError, ValueError):
            continue
    return children


class Chaos(threading.Thread):
    """Background saboteur: worker kills, SIGHUP reloads, cache corruption.

    Runs until stop() — every --chaos-interval seconds it performs one
    randomly chosen (seeded, reproducible) event from whatever sabotage the
    flags enabled. Worker pids are re-read from /proc on every kill so a
    respawned worker can be killed again.
    """

    def __init__(self, args):
        super().__init__(name="chaos", daemon=True)
        self.args = args
        self.rng = random.Random(args.chaos_seed)
        self.stopping = threading.Event()
        self.events = []

    def stop(self):
        self.stopping.set()

    def log(self, message):
        self.events.append(message)
        print(f"serve_loadgen: chaos: {message}", flush=True)

    def kill_random_worker(self):
        workers = live_children(self.args.chaos_parent)
        if not workers:
            self.log("no live workers to kill")
            return
        victim = self.rng.choice(workers)
        try:
            os.kill(victim, signal.SIGKILL)
            self.log(f"SIGKILL worker {victim}")
        except ProcessLookupError:
            self.log(f"worker {victim} already gone")

    def sighup_parent(self):
        try:
            os.kill(self.args.chaos_parent, signal.SIGHUP)
            self.log(f"SIGHUP supervisor {self.args.chaos_parent}")
        except ProcessLookupError:
            self.log("supervisor gone?!")

    def corrupt_cache_entry(self):
        entries = []
        for root, _, files in os.walk(self.args.chaos_corrupt_dir):
            entries.extend(os.path.join(root, f) for f in files
                           if f.endswith(".entry"))
        if not entries:
            self.log("no disk-cache entries to corrupt yet")
            return
        victim = self.rng.choice(entries)
        try:
            with open(victim, "w", encoding="ascii") as f:
                f.write("corrupted-by-chaos\n")
            self.log(f"corrupted {os.path.basename(victim)}")
        except OSError as error:
            self.log(f"corruption failed: {error}")

    def run(self):
        actions = []
        if self.args.chaos_parent:
            actions.append(self.kill_random_worker)
            actions.append(self.sighup_parent)
        if self.args.chaos_corrupt_dir:
            actions.append(self.corrupt_cache_entry)
        if not actions:
            return
        while not self.stopping.wait(self.args.chaos_interval):
            self.rng.choice(actions)()


class Client(threading.Thread):
    def __init__(self, index, target, args, killer):
        super().__init__(name=f"client-{index}")
        self.index = index
        self.target = target
        self.args = args
        self.killer = killer
        self.responses = []  # parsed envelopes, arrival order
        self.errors = []
        self.send_lock = threading.Lock()  # retries resend from timer threads
        self.retry_timers = []

    def fail(self, message):
        self.errors.append(f"client {self.index}: {message}")

    def request_line(self, round_name, n):
        rid = f"c{self.index}-r{round_name}-{n}"
        payload = {"id": rid}
        payload.update(request_payload(self.args, n))
        return rid, json.dumps(payload, separators=(", ", ": "))

    def send(self, sock, payload):
        with self.send_lock:
            sock.sendall(payload.encode())

    def schedule_retry(self, sock, rid, line, attempt, hint_ms):
        """Resend `line` after hint * 2^attempt ms, capped; off-thread so the
        reader keeps draining other responses during the backoff."""
        delay_ms = min(max(hint_ms, 1) * (2 ** attempt),
                       self.args.retry_cap_ms)
        timer = threading.Timer(delay_ms / 1000.0,
                                lambda: self.send(sock, line + "\n"))
        timer.daemon = True
        self.retry_timers.append(timer)
        timer.start()

    def run_round(self, sock, reader, round_name, expect_warm):
        pending = {}  # rid -> [line, attempts]
        lines = []
        for n in range(self.args.requests):
            rid, line = self.request_line(round_name, n)
            pending[rid] = [line, 0]
            lines.append(line)
        self.send(sock, "\n".join(lines) + "\n")
        while pending:
            raw = reader.readline()
            if not raw:
                self.fail(f"connection closed with {len(pending)} "
                          "responses outstanding")
                return
            try:
                envelope = json.loads(raw)
            except json.JSONDecodeError as error:
                self.fail(f"unparseable response: {error}: {raw[:200]!r}")
                return
            rid = envelope.get("id", "")
            if rid not in pending:
                self.fail(f"unexpected or duplicated response id '{rid}'")
                return
            self.responses.append(envelope)
            self.killer.on_response()
            if not envelope.get("ok", False):
                error = envelope.get("error", {})
                code = error.get("code", "?")
                if code == "overloaded" and self.args.retry_overloaded:
                    line, attempts = pending[rid]
                    if attempts >= self.args.max_retries:
                        self.fail(f"'{rid}' still overloaded after "
                                  f"{attempts} retries")
                        return
                    pending[rid][1] = attempts + 1
                    self.schedule_retry(sock, rid, line, attempts,
                                        error.get("retry_after_ms", 50))
                    continue  # rid stays pending; the retry answers it
                del pending[rid]
                if code == "overloaded" and self.args.allow_overloaded:
                    continue
                self.fail(f"response '{rid}' not ok (code {code}): "
                          f"{raw[:200]!r}")
                return
            del pending[rid]
            if expect_warm and self.args.assert_warm_hits:
                metrics = envelope.get("metrics", {})
                cached = (metrics.get("session_cache") == "hit"
                          or metrics.get("disk_cache") == "hit")
                if not cached or metrics.get("explores") != 0:
                    self.fail(f"warm response '{rid}' missed both caches: "
                              f"{metrics}")
                    return

    def run(self):
        try:
            sock = connect(self.target)
        except OSError as error:
            self.fail(f"cannot connect: {error}")
            return
        try:
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            self.run_round(sock, reader, "cold", expect_warm=False)
            if not self.errors and self.args.warm_rounds > 0:
                for warm in range(self.args.warm_rounds):
                    self.run_round(sock, reader, f"warm{warm}",
                                   expect_warm=True)
                    if self.errors:
                        break
        finally:
            for timer in self.retry_timers:
                timer.cancel()
            sock.close()


def request_payload(args, n):
    """The id-less request the n-th slot of every round sends. Distinct
    horizons (--spread-horizons) force distinct solves against a shared
    session model, so a chaos run spends real engine time instead of
    answering everything from the caches."""
    payload = {"op": "analyze",
               "architecture": args.arch[n % len(args.arch)]}
    if args.spread_horizons:
        payload["horizon_years"] = round(
            1.0 + 0.25 * (n % args.spread_horizons), 2)
    return payload


def request_key(rid, args):
    """The (round-independent) request payload a response id stands for."""
    n = int(rid.rsplit("-", 1)[1])
    return json.dumps(request_payload(args, n), sort_keys=True)


def check_consistency(responses, args):
    """Every ok response to the same request payload must carry a
    bit-identical `result` — fresh, checkpointed, respawned, or cached."""
    seen = {}
    errors = []
    for envelope in responses:
        if not envelope.get("ok", False):
            continue
        rid = envelope.get("id", "")
        try:
            key = request_key(rid, args)
        except (ValueError, IndexError):
            errors.append(f"malformed response id '{rid}'")
            continue
        result = json.dumps(envelope.get("result"), sort_keys=True)
        if key not in seen:
            seen[key] = (rid, result)
        elif seen[key][1] != result:
            errors.append(
                f"divergent results for {key}: '{seen[key][0]}' vs "
                f"'{rid}' disagree")
    return errors


def run_extract(path):
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            envelope = json.loads(line)
            result = json.dumps(envelope.get("result"), sort_keys=True)
            rows.append((envelope.get("id", ""), result))
    for rid, result in sorted(rows):
        print(f"{rid}\t{result}")
    return 0


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "extract":
        if len(sys.argv) != 3:
            raise SystemExit("usage: serve_loadgen.py extract FILE.ndjson")
        return run_extract(sys.argv[2])

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connect", required=True,
                        help="tcp:HOST:PORT or unix:PATH")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per round")
    parser.add_argument("--arch", action="append", required=True,
                        help="architecture file (repeatable; round-robined)")
    parser.add_argument("--spread-horizons", type=int, default=0,
                        help="cycle horizon_years over K distinct values so "
                             "each round carries K x len(--arch) distinct "
                             "computations (0 = every request identical per "
                             "architecture)")
    parser.add_argument("--warm-rounds", type=int, default=1)
    parser.add_argument("--assert-warm-hits", action="store_true",
                        help="warm rounds must report a session or disk "
                             "cache hit and explores=0")
    parser.add_argument("--allow-overloaded", action="store_true")
    parser.add_argument("--retry-overloaded", action="store_true",
                        help="retry shed requests after the server's "
                             "retry_after_ms hint with capped exponential "
                             "backoff")
    parser.add_argument("--max-retries", type=int, default=8)
    parser.add_argument("--retry-cap-ms", type=int, default=2000,
                        help="backoff ceiling per retry")
    parser.add_argument("--kill-pid", type=int, default=None)
    parser.add_argument("--kill-after", type=int, default=0,
                        help="responses to wait for before --kill-pid fires")
    parser.add_argument("--chaos", action="store_true",
                        help="inject faults for the whole run (worker kills, "
                             "SIGHUP reloads, disk-cache corruption) and "
                             "assert result-payload consistency")
    parser.add_argument("--chaos-parent", type=int, default=None,
                        help="serve supervisor pid: chaos SIGKILLs its live "
                             "children (re-read each event) and SIGHUPs it")
    parser.add_argument("--chaos-corrupt-dir", default=None,
                        help="disk-cache directory: chaos scribbles over "
                             "random .entry files")
    parser.add_argument("--chaos-interval", type=float, default=0.4,
                        help="seconds between chaos events")
    parser.add_argument("--chaos-seed", type=int, default=1234)
    parser.add_argument("--assert-consistent", action="store_true",
                        help="every ok response to the same request payload "
                             "must carry a bit-identical result (implied by "
                             "--chaos)")
    parser.add_argument("--responses-out", default=None,
                        help="write every response envelope (NDJSON) here")
    parser.add_argument("--requests-out", default=None,
                        help="write the exact request lines this run sends "
                             "(NDJSON) — replay them through `autosec serve "
                             "--input` to compare transports")
    args = parser.parse_args()

    if args.chaos and not (args.chaos_parent or args.chaos_corrupt_dir):
        raise SystemExit("serve_loadgen: --chaos needs --chaos-parent "
                         "and/or --chaos-corrupt-dir")

    if args.requests_out:
        # The same deterministic ids the clients will use, so a one-shot
        # --input replay produces comparable envelopes.
        rounds = ["cold"] + [f"warm{w}" for w in range(args.warm_rounds)]
        with open(args.requests_out, "w", encoding="utf-8") as out:
            for index in range(args.clients):
                for round_name in rounds:
                    for n in range(args.requests):
                        payload = {"id": f"c{index}-r{round_name}-{n}"}
                        payload.update(request_payload(args, n))
                        out.write(json.dumps(
                            payload, separators=(", ", ": ")) + "\n")

    target = parse_connect(args.connect)
    killer = Killer(args.kill_pid, args.kill_after)
    chaos = Chaos(args) if args.chaos else None
    clients = [Client(i, target, args, killer) for i in range(args.clients)]
    started = time.monotonic()
    for client in clients:
        client.start()
    if chaos:
        chaos.start()
    for client in clients:
        client.join()
    if chaos:
        chaos.stop()
        chaos.join(timeout=5)

    responses = [r for client in clients for r in client.responses]
    if args.responses_out:
        with open(args.responses_out, "w", encoding="utf-8") as out:
            for envelope in responses:
                out.write(json.dumps(envelope, sort_keys=True) + "\n")

    errors = [e for client in clients for e in client.errors]
    ok_responses = [r for r in responses if r.get("ok", False)]
    shed = sum(1 for r in responses
               if r.get("error", {}).get("code") == "overloaded")
    expected = args.clients * args.requests * (1 + max(args.warm_rounds, 0))
    for error in errors:
        print(f"serve_loadgen: FAIL: {error}", file=sys.stderr)
    if not errors:
        # Exactly-once delivery: every request answered ok exactly once
        # (overloaded envelopes are bookkeeping, not answers).
        answered = len(ok_responses) + (shed if args.allow_overloaded
                                        and not args.retry_overloaded else 0)
        if answered != expected:
            print(f"serve_loadgen: FAIL: expected {expected} answered "
                  f"requests, got {answered} "
                  f"({len(ok_responses)} ok, {shed} shed)", file=sys.stderr)
            errors.append("response count")
    if not errors and (args.chaos or args.assert_consistent):
        for error in check_consistency(responses, args):
            print(f"serve_loadgen: FAIL: {error}", file=sys.stderr)
            errors.append("consistency")
    if errors:
        return 1
    hits = sum(1 for r in ok_responses
               if r.get("metrics", {}).get("session_cache") == "hit")
    disk_hits = sum(1 for r in ok_responses
                    if r.get("metrics", {}).get("disk_cache") == "hit")
    ckpt_hits = sum(r.get("metrics", {}).get("checkpoint", {}).get("hits", 0)
                    for r in ok_responses)
    elapsed = time.monotonic() - started
    chaos_note = (f", {len(chaos.events)} chaos events" if chaos else "")
    retry_note = f", {shed} retried sheds" if args.retry_overloaded else ""
    print(f"serve_loadgen: OK — {len(ok_responses)} ok responses across "
          f"{args.clients} clients in {elapsed:.1f}s, {hits} session-cache "
          f"hits, {disk_hits} disk-cache hits, {ckpt_hits} checkpoint "
          f"replays{retry_note}{chaos_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
