// Thin entry point; all behaviour lives in cli/cli.cpp (library code, so the
// test suite covers every command).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return autosec::cli::run_cli(args, std::cout, std::cerr);
}
