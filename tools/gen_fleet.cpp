// gen-fleet: deterministic generator of parameterized N-ECU fleet
// architectures, the scaling workload of the compact exploration engine.
//
// The generated topology is one internet-facing telematics gateway plus N
// identical node ECUs on a shared CAN bus, with S message streams between the
// first nodes. Every node beyond the stream endpoints is interchangeable —
// their modules are identical up to variable renaming — so the symmetry
// reduction collapses them during exploration while the endpoints (whose
// exploited-state the properties actually reference) stay distinguished.
//
// Output is byte-deterministic in the parameters: CI regenerates the
// committed examples/fleet_*.arch files and diffs them against the checkout.
#include <cstdio>
#include <iostream>
#include <string>

#include "automotive/archfile.hpp"
#include "automotive/architecture.hpp"
#include "util/numeric.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: gen-fleet --ecus N [--streams S] [--output FILE]\n"
        "\n"
        "Generate an N-node fleet architecture (.arch): one internet-facing\n"
        "gateway plus N identical node ECUs on a shared CAN bus, with S\n"
        "message streams between the first node ECUs (default 1). Output goes\n"
        "to stdout unless --output is given. The output is byte-deterministic\n"
        "in (N, S).\n"
        "\n"
        "  --ecus N      node ECU count (>= 2)\n"
        "  --streams S   message streams NODE<2k-1> -> NODE<2k> (default 1;\n"
        "                requires N >= 2*S)\n"
        "  --output F    write to F instead of stdout\n"
        "  --help        this text\n";
}

[[noreturn]] void fail_usage(const std::string& message) {
  std::cerr << "gen-fleet: " << message << "\n\n";
  print_usage(std::cerr);
  std::exit(2);
}

int parse_count(const std::string& text, const char* what) {
  const std::optional<double> value = autosec::util::parse_double(text);
  if (!value || *value < 0 || *value != static_cast<int>(*value)) {
    fail_usage(std::string("malformed ") + what + ": '" + text + "'");
  }
  return static_cast<int>(*value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autosec::automotive;

  int ecus = 0;
  int streams = 1;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) fail_usage(std::string("missing ") + what);
      return argv[++i];
    };
    if (arg == "--ecus") {
      ecus = parse_count(next("--ecus value"), "--ecus");
    } else if (arg == "--streams") {
      streams = parse_count(next("--streams value"), "--streams");
    } else if (arg == "--output" || arg == "-o") {
      output = next("--output value");
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else {
      fail_usage("unknown argument '" + arg + "'");
    }
  }
  if (ecus < 2) fail_usage("--ecus must be >= 2");
  if (streams < 1) fail_usage("--streams must be >= 1");
  if (ecus < 2 * streams) fail_usage("--streams requires --ecus >= 2*S");

  Architecture arch;
  arch.name = "Fleet " + std::to_string(ecus) + " ECUs";

  arch.buses.push_back({"NET", BusKind::kInternet, std::nullopt, std::nullopt});
  arch.buses.push_back({"CAN", BusKind::kCan, std::nullopt, std::nullopt});

  // Telematics gateway: the attacker's entry point (Table 2: externally
  // reachable, ASIL A patch cadence on the uplink stack).
  Ecu gateway;
  gateway.name = "GW";
  gateway.phi = 52.0;
  gateway.interfaces.push_back({"NET", 1.9, std::nullopt});
  gateway.interfaces.push_back({"CAN", 3.8, std::nullopt});
  arch.ecus.push_back(std::move(gateway));

  // Node ECUs: identical rates, so every node not named by a message stream
  // is interchangeable with the others.
  for (int n = 1; n <= ecus; ++n) {
    Ecu node;
    node.name = "NODE" + std::to_string(n);
    node.phi = 12.0;
    node.interfaces.push_back({"CAN", 1.2, std::nullopt});
    arch.ecus.push_back(std::move(node));
  }

  // Streams pair up the first nodes: NODE1->NODE2, NODE3->NODE4, ...
  for (int s = 1; s <= streams; ++s) {
    Message message;
    message.name = "m" + std::to_string(s);
    message.sender = "NODE" + std::to_string(2 * s - 1);
    message.receivers = {"NODE" + std::to_string(2 * s)};
    message.buses = {"CAN"};
    message.protection = Protection::kCmac128;
    arch.messages.push_back(std::move(message));
  }

  arch.validate();
  if (output.empty()) {
    std::cout << write_architecture(arch);
    return 0;
  }
  try {
    save_architecture_file(arch, output);
  } catch (const std::exception& error) {
    std::cerr << "gen-fleet: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
