// Shared harness for the paper-figure bench binaries: every bench that
// constructs a BenchReport records the whole run in the process-wide metrics
// registry and serializes it to BENCH_<name>.json on exit, so CI can archive
// per-figure engine metrics (stage spans, solver iterations, cache and pool
// stats) next to the printed tables.
//
// Output directory: $AUTOSEC_BENCH_DIR when set, else the current directory.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace autosec::bench {

/// Peak resident set size of this process in MiB, 0.0 when the platform
/// doesn't expose it. Linux reports ru_maxrss in KiB, macOS in bytes.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

class BenchReport {
 public:
  /// Enables (and resets) the global metrics registry for the lifetime of
  /// this object; `name` becomes the BENCH_<name>.json file stem. Setting
  /// AUTOSEC_BENCH_NO_METRICS keeps the registry off — the A/B knob for
  /// measuring the recording overhead itself.
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    util::metrics::Registry& metrics = util::metrics::registry();
    metrics.reset();
    metrics.set_enabled(std::getenv("AUTOSEC_BENCH_NO_METRICS") == nullptr);
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    util::metrics::Registry& metrics = util::metrics::registry();
    metrics.gauge("bench.wall_seconds", watch_.elapsed_seconds());
    if (const double rss = peak_rss_mb(); rss > 0.0) {
      metrics.gauge("bench.peak_rss_mb", rss);
    }
    metrics.set_enabled(false);
    const std::string path = output_path();
    try {
      metrics.write_json(path);
      std::cerr << "metrics: " << path << "\n";
    } catch (const std::exception& e) {
      std::cerr << "metrics: failed to write " << path << ": " << e.what() << "\n";
    }
  }

  std::string output_path() const {
    std::string dir;
    if (const char* env = std::getenv("AUTOSEC_BENCH_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    return dir + "BENCH_" + name_ + ".json";
  }

 private:
  std::string name_;
  util::Stopwatch watch_;
};

}  // namespace autosec::bench
