// Serve-path bench: drives the in-process Server through the v1 NDJSON
// protocol and measures what the session cache buys — cold vs warm analyze
// wall time per architecture — plus the served-vs-one-shot numeric agreement
// that tools/check_bench_regression.py gates on (bench.agreement_*).
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automotive/analyzer.hpp"
#include "automotive/archfile.hpp"
#include "bench_util.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"

using namespace autosec;
using util::JsonValue;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "bench_serve: cannot read " << path
              << " (run from the repository root)\n";
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

JsonValue handle(service::Server& server, const std::string& line) {
  return JsonValue::parse(server.handle_line(line));
}

double relative_diff(double a, double b) {
  return std::abs(a - b) / std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

int main() {
  const bench::BenchReport report("serve");
  util::metrics::Registry& metrics = util::metrics::registry();

  const std::vector<std::string> archs = {"data/arch1.arch", "data/arch2.arch",
                                          "data/arch3.arch"};
  service::Server server({});

  std::cout << "== autosec serve: session-cache effect per architecture ==\n\n";
  util::TextTable table(
      {"architecture", "states", "cold (s)", "warm (s)", "speedup"});

  double agreement = 0.0;
  for (const std::string& path : archs) {
    const std::string line =
        "{\"op\": \"analyze\", \"architecture\": \"" + path + "\"}";

    util::Stopwatch cold_watch;
    const JsonValue cold = handle(server, line);
    const double cold_seconds = cold_watch.elapsed_seconds();
    // Averaging many warm requests keeps the wall-time gauge out of noise
    // territory for the regression gate (a single warm hit is ~1ms).
    constexpr int kWarmIters = 100;
    util::Stopwatch warm_watch;
    JsonValue warm = handle(server, line);
    for (int i = 1; i < kWarmIters; ++i) warm = handle(server, line);
    const double warm_seconds = warm_watch.elapsed_seconds() / kWarmIters;
    if (!cold.bool_or("ok", false) || !warm.bool_or("ok", false)) {
      std::cerr << "bench_serve: request failed: " << cold.dump() << "\n";
      return 1;
    }
    if (warm.find("metrics")->int_or("explores", -1) != 0) {
      std::cerr << "bench_serve: warm request re-explored " << path << "\n";
      return 1;
    }

    // Served numbers must agree with the one-shot analyzer bit-for-bit; the
    // gauge records the worst relative difference across all rows.
    const automotive::ArchitectureReport direct =
        automotive::analyze_architecture_report(
            automotive::parse_architecture(read_file(path)));
    const JsonValue* rows = cold.find("result")->find("results");
    for (size_t i = 0; i < direct.results.size(); ++i) {
      const JsonValue& row = rows->at(i);
      const automotive::AnalysisResult& expected = direct.results[i];
      agreement = std::max(
          {agreement,
           relative_diff(row.number_or("exploitable_fraction", -1.0),
                         expected.exploitable_fraction),
           relative_diff(row.number_or("breach_probability", -1.0),
                         expected.breach_probability),
           relative_diff(row.number_or("steady_state_fraction", -1.0),
                         expected.steady_state_fraction)});
    }

    const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0;
    table.add_row({path,
                   std::to_string(cold.find("metrics")->int_or("states", 0)),
                   util::format_sig(cold_seconds, 3),
                   util::format_sig(warm_seconds, 3),
                   util::format_sig(speedup, 3)});
    metrics.gauge("serve.cold_seconds[" + path + "]", cold_seconds);
    metrics.gauge("serve.warm_seconds[" + path + "]", warm_seconds);
  }
  std::cout << table << "\n";

  const service::SessionCache::Stats cache = server.cache_stats();
  std::cout << "cache: " << cache.entries << " entries, " << cache.hits
            << " hits, " << cache.misses << " misses\n";
  std::cout << "max served-vs-oneshot relative diff: " << agreement << "\n";

  metrics.gauge("bench.agreement_serve_analyze", agreement);
  metrics.gauge("serve.cache_hits", static_cast<double>(cache.hits));
  metrics.gauge("serve.cache_misses", static_cast<double>(cache.misses));

  // == Disk-cache warm restart: a new Server over the same --disk-cache dir
  // answers the whole batch from disk, with zero engine work, and the
  // replayed payloads agree bit-for-bit with the computed ones.
  std::cout << "\n== autosec serve: disk-cache warm restart ==\n\n";
  const std::string cache_dir =
      std::filesystem::temp_directory_path() / "autosec_bench_disk_cache";
  std::filesystem::remove_all(cache_dir);
  service::ServerOptions disk_options;
  disk_options.disk_cache_dir = cache_dir;

  std::vector<std::string> cold_results;
  double populate_seconds = 0.0;
  {
    service::Server first(disk_options);
    util::Stopwatch populate_watch;
    for (const std::string& path : archs) {
      const JsonValue cold = handle(
          first, "{\"op\": \"analyze\", \"architecture\": \"" + path + "\"}");
      if (!cold.bool_or("ok", false)) {
        std::cerr << "bench_serve: disk-cache populate failed: " << cold.dump()
                  << "\n";
        return 1;
      }
      cold_results.push_back(cold.find("result")->dump());
    }
    populate_seconds = populate_watch.elapsed_seconds();
  }  // the first server is gone; only the directory survives the "restart"

  service::Server restarted(disk_options);
  util::Stopwatch replay_watch;
  double disk_agreement = 0.0;
  for (size_t i = 0; i < archs.size(); ++i) {
    const JsonValue replayed = handle(
        restarted,
        "{\"op\": \"analyze\", \"architecture\": \"" + archs[i] + "\"}");
    if (replayed.find("metrics")->string_or("disk_cache", "") != "hit" ||
        replayed.find("metrics")->int_or("explores", -1) != 0) {
      std::cerr << "bench_serve: restart did not replay " << archs[i]
                << " from disk: " << replayed.find("metrics")->dump() << "\n";
      return 1;
    }
    disk_agreement = std::max(
        disk_agreement,
        replayed.find("result")->dump() == cold_results[i] ? 0.0 : 1.0);
  }
  const double replay_seconds = replay_watch.elapsed_seconds();
  std::filesystem::remove_all(cache_dir);

  std::cout << "populate (cold engine): " << util::format_sig(populate_seconds, 3)
            << " s, warm replay from disk: "
            << util::format_sig(replay_seconds, 3) << " s ("
            << util::format_sig(
                   replay_seconds > 0 ? populate_seconds / replay_seconds : 0.0,
                   3)
            << "x)\n";
  metrics.gauge("serve.disk_populate_seconds", populate_seconds);
  metrics.gauge("serve.disk_warm_seconds", replay_seconds);
  // 0 when every replayed payload is byte-identical to its computed
  // original; gated at <=1e-8 like every bench.agreement_* gauge.
  metrics.gauge("bench.agreement_serve_disk", disk_agreement);
  return 0;
}
