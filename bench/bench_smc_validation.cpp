// Cross-validation of the numerical engine against the statistical
// (simulation) engine: for a sample of Fig. 5 cells, the numerical
// exploitability must fall inside the simulator's 95% confidence interval
// (allowing the usual ~5% of misses, we use 3 sigma bands for the check).
// Two independent implementation paths agreeing is the strongest internal
// evidence that the reproduced Fig. 5 numbers are not an artifact of either
// engine.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "ctmc/simulation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

int main() {
  std::cout << "== Statistical vs numerical engine (Fig. 5 cells, nmax = 2) ==\n\n";
  util::TextTable table({"Architecture", "Protection", "numerical", "statistical",
                         "95% CI half-width", "inside 3-sigma"});
  int misses = 0;
  for (int which = 1; which <= 3; ++which) {
    for (const Protection protection :
         {Protection::kUnencrypted, Protection::kAes128}) {
      AnalysisOptions options;
      options.nmax = 2;
      const SecurityAnalysis analysis(cs::architecture(which, protection),
                                      cs::kMessage,
                                      SecurityCategory::kConfidentiality, options);
      const double numeric = analysis.check("R{\"exposure\"}=? [ C<=1 ]");

      ctmc::SimulationOptions simulation;
      simulation.samples = 20000;
      simulation.seed = 20150607 + static_cast<uint64_t>(which);
      const ctmc::Ctmc chain = analysis.space().to_ctmc();
      const auto estimate = ctmc::estimate_time_fraction(
          chain, static_cast<uint32_t>(analysis.space().initial_state()),
          analysis.space().label_mask(kViolatedLabel), 1.0, simulation);

      const bool inside =
          std::abs(estimate.mean - numeric) <= 3.0 / 1.96 * estimate.half_width + 1e-9;
      misses += inside ? 0 : 1;
      table.add_row({"Architecture " + std::to_string(which),
                     std::string(protection_name(protection)),
                     util::format_percent(numeric), util::format_percent(estimate.mean),
                     util::format_percent(estimate.half_width),
                     inside ? "yes" : "NO"});
    }
  }
  std::cout << table << "\n";
  std::printf("cells outside the 3-sigma band: %d of 6\n", misses);
  return misses > 1 ? 1 : 0;
}
