// Regenerates Figure 5: exploitability of message m within one year for
// Confidentiality / Integrity / Availability x {unencrypted, CMAC128,
// AES128} x {Architecture 1, 2, 3}, with nmax = 2 as in the paper's
// experiments. The paper's printed bar values are shown alongside for the
// shape comparison recorded in EXPERIMENTS.md.
#include <cstdio>
#include <iostream>
#include <map>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

// The values printed in the paper's Fig. 5 (percent within one year).
// Availability has no protection dependence; confidentiality/integrity values
// depend on the protection mode.
double paper_value(SecurityCategory category, Protection protection, int arch) {
  const double avail[3] = {12.2, 9.62, 0.668};
  const double unprotected[3] = {12.2, 9.62, 0.668};
  const double protected_by_crypto[3] = {6.97, 7.43, 0.388};
  switch (category) {
    case SecurityCategory::kAvailability:
      return avail[arch - 1];
    case SecurityCategory::kIntegrity:
      return protection == Protection::kUnencrypted ? unprotected[arch - 1]
                                                    : protected_by_crypto[arch - 1];
    case SecurityCategory::kConfidentiality:
      return protection == Protection::kAes128 ? protected_by_crypto[arch - 1]
                                               : unprotected[arch - 1];
  }
  return 0.0;
}

}  // namespace

int main() {
  std::cout << "== Figure 5: exploitability of message m within 1 year (nmax = 2) ==\n\n";

  const SecurityCategory categories[] = {SecurityCategory::kConfidentiality,
                                         SecurityCategory::kIntegrity,
                                         SecurityCategory::kAvailability};
  const Protection protections[] = {Protection::kUnencrypted, Protection::kCmac128,
                                    Protection::kAes128};

  AnalysisOptions options;
  options.nmax = 2;

  double total_check_seconds = 0.0;
  for (const SecurityCategory category : categories) {
    std::printf("--- %s ---\n", category_name(category).data());
    util::TextTable table({"Protection", "Arch 1", "Arch 2", "Arch 3",
                           "paper (A1/A2/A3)"});
    for (const Protection protection : protections) {
      std::vector<std::string> row{std::string(protection_name(protection))};
      std::string paper;
      for (int arch = 1; arch <= 3; ++arch) {
        const AnalysisResult result =
            analyze_message(cs::architecture(arch, protection), cs::kMessage,
                            category, options);
        total_check_seconds += result.build_seconds + result.check_seconds;
        row.push_back(util::format_percent(result.exploitable_fraction));
        paper += util::format_sig(paper_value(category, protection, arch), 3) + "%";
        if (arch < 3) paper += " / ";
      }
      row.push_back(paper);
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::cout << "Shape checks reproduced from the paper's discussion:\n"
               "  * CMAC128 equals unencrypted for confidentiality, improves integrity;\n"
               "  * AES128 improves confidentiality AND integrity;\n"
               "  * availability is protection-independent (bus-level property);\n"
               "  * Architecture 3 (FlexRay + bus guardian) is an order of magnitude\n"
               "    more secure; Architecture 2 is no dramatic improvement over 1.\n";
  std::printf("\ntotal model build+check time: %.2f s\n", total_check_seconds);
  return 0;
}
