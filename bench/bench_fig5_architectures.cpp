// Regenerates Figure 5: exploitability of message m within one year for
// Confidentiality / Integrity / Availability x {unencrypted, CMAC128,
// AES128} x {Architecture 1, 2, 3}, with nmax = 2 as in the paper's
// experiments. The paper's printed bar values are shown alongside for the
// shape comparison recorded in EXPERIMENTS.md.
//
// The run doubles as the staged-engine benchmark. The figure's 27
// (architecture, protection, category) analyses are computed three ways:
//   1. serial baseline: one model per analysis, every solve sequential on a
//      single thread, unbounded queries via pure Gauss-Seidel — the engine
//      path before the staged session existed;
//   2. staged engine, parallel fan: the same 27 independent sessions fanned
//      across the 4-thread pool with the Krylov-accelerated fixpoint solver
//      (the parallel kernels keep serial summation order, so results are
//      deterministic at any thread count);
//   3. staged engine, batch sessions: one EngineSession per (architecture,
//      protection) whose batch model covers all three categories — 9
//      compiles + explorations instead of 27, every property solved against
//      a shared state space (results match to solver tolerance).
// It reports the wall-clock speedup of (2) over (1) — expected >= 2x — and
// the largest absolute result difference of (2) and (3) against (1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <vector>

#include <unistd.h>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "bench_util.hpp"
#include "csl/checkpoint.hpp"
#include "linalg/gauss_seidel.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

constexpr SecurityCategory kCategories[] = {SecurityCategory::kConfidentiality,
                                            SecurityCategory::kIntegrity,
                                            SecurityCategory::kAvailability};
constexpr Protection kProtections[] = {Protection::kUnencrypted, Protection::kCmac128,
                                       Protection::kAes128};

// The values printed in the paper's Fig. 5 (percent within one year).
// Availability has no protection dependence; confidentiality/integrity values
// depend on the protection mode.
double paper_value(SecurityCategory category, Protection protection, int arch) {
  const double avail[3] = {12.2, 9.62, 0.668};
  const double unprotected[3] = {12.2, 9.62, 0.668};
  const double protected_by_crypto[3] = {6.97, 7.43, 0.388};
  switch (category) {
    case SecurityCategory::kAvailability:
      return avail[arch - 1];
    case SecurityCategory::kIntegrity:
      return protection == Protection::kUnencrypted ? unprotected[arch - 1]
                                                    : protected_by_crypto[arch - 1];
    case SecurityCategory::kConfidentiality:
      return protection == Protection::kAes128 ? protected_by_crypto[arch - 1]
                                               : unprotected[arch - 1];
  }
  return 0.0;
}

/// The 27 analyses of the figure in a fixed order: protection-major, then
/// architecture, then category — shared by all three engine passes.
struct Task {
  Protection protection;
  int arch = 1;
  SecurityCategory category = SecurityCategory::kConfidentiality;
};

std::vector<Task> tasks() {
  std::vector<Task> out;
  for (const Protection protection : kProtections) {
    for (int arch = 1; arch <= 3; ++arch) {
      for (const SecurityCategory category : kCategories) {
        out.push_back({protection, arch, category});
      }
    }
  }
  return out;
}

AnalysisOptions pair_options() {
  AnalysisOptions options;
  options.nmax = 2;
  options.batch_model = false;
  options.parallel_solves = false;
  return options;
}

/// Serial baseline: the seed engine path — one model compiled and explored
/// per (architecture, protection, category), all solves sequential, unbounded
/// queries solved by pure Gauss-Seidel sweeps (the seed's only method).
std::vector<AnalysisResult> run_serial_baseline() {
  util::set_thread_count(1);
  AnalysisOptions options = pair_options();
  options.plan.method = linalg::FixpointMethod::kGaussSeidel;
  std::vector<AnalysisResult> results;
  for (const Task& task : tasks()) {
    results.push_back(analyze_message(cs::architecture(task.arch, task.protection),
                                      cs::kMessage, task.category, options));
  }
  return results;
}

/// Staged engine, parallel fan: the same 27 independent session-backed
/// analyses distributed over the pool; each slot writes only its own result,
/// so the output is identical at any thread count.
std::vector<AnalysisResult> run_parallel_fan() {
  util::set_thread_count(4);
  const std::vector<Task> all = tasks();
  std::vector<AnalysisResult> results(all.size());
  util::parallel_for(0, all.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] =
          analyze_message(cs::architecture(all[i].arch, all[i].protection),
                          cs::kMessage, all[i].category, pair_options());
    }
  });
  return results;
}

/// Staged engine, batch sessions: one EngineSession per (architecture,
/// protection) covering all categories — 9 explorations serve 27 analyses
/// (108 properties); the per-property solves fan across the pool.
std::vector<AnalysisResult> run_batch_sessions(
    csl::SessionStats& stats_out,
    std::shared_ptr<csl::CheckpointLedger> checkpoint) {
  util::set_thread_count(4);
  AnalysisOptions options;
  options.nmax = 2;  // batch_model + parallel_solves on by default
  options.checkpoint = std::move(checkpoint);
  std::vector<AnalysisResult> results;
  for (const Protection protection : kProtections) {
    for (int arch = 1; arch <= 3; ++arch) {
      ArchitectureReport report = analyze_architecture_report(
          cs::architecture(arch, protection), options,
          {kCategories[0], kCategories[1], kCategories[2]}, {cs::kMessage});
      stats_out.compile_count += report.stats.compile_count;
      stats_out.explore_count += report.stats.explore_count;
      stats_out.check_count += report.stats.check_count;
      stats_out.compile_seconds += report.stats.compile_seconds;
      stats_out.explore_seconds += report.stats.explore_seconds;
      stats_out.solve_seconds += report.stats.solve_seconds;
      for (AnalysisResult& result : report.results) {
        results.push_back(std::move(result));
      }
    }
  }
  return results;
}

/// Agreement metric shared with the differential harness: |a−b| normalized
/// by max(1, |a|, |b|) — absolute for the probability-scale figures,
/// relative for mean time to breach (whose achievable cross-solver agreement
/// scales with the value).
double normalized_difference(double a, double b) {
  if (std::isinf(a) && std::isinf(b) && a == b) return 0.0;
  return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
}

double max_difference(const std::vector<AnalysisResult>& a,
                      const std::vector<AnalysisResult>& b) {
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diffs[] = {
        normalized_difference(a[i].exploitable_fraction, b[i].exploitable_fraction),
        normalized_difference(a[i].breach_probability, b[i].breach_probability),
        normalized_difference(a[i].steady_state_fraction, b[i].steady_state_fraction),
        normalized_difference(a[i].mean_time_to_breach, b[i].mean_time_to_breach),
    };
    max_diff = std::max(max_diff, *std::max_element(std::begin(diffs), std::end(diffs)));
  }
  return max_diff;
}

/// Micro-measures the cost of one disarmed fault-site poll (the relaxed
/// atomic load every engine hook pays in a healthy run). The result feeds the
/// bench.fault_overhead_fraction gauge: polls-during-the-bench x this cost,
/// as a fraction of engine wall time.
double measure_disarmed_poll_seconds() {
  constexpr uint64_t kIterations = 4'000'000;
  volatile bool sink = false;  // keep the loop from being elided
  util::Stopwatch watch;
  for (uint64_t i = 0; i < kIterations; ++i) {
    sink = sink | util::fault::triggered("explore.alloc");
  }
  (void)sink;
  return watch.elapsed_seconds() / static_cast<double>(kIterations);
}

/// Micro-measures one checkpoint persist against the live post-batch ledger,
/// so the snapshot serialized per iteration has the real record count of the
/// Fig. 5 job. Alternating probe values defeat the no-change short-circuit,
/// and the explicit flush() forces a persist per iteration regardless of the
/// ledger's interval gating.
double measure_persist_seconds(csl::CheckpointLedger& ledger) {
  constexpr uint64_t kIterations = 200;
  util::Stopwatch watch;
  for (uint64_t i = 0; i < kIterations; ++i) {
    ledger.record("bench.persist_probe", i % 2 == 0 ? 1.0 : -1.0);
    ledger.flush();
  }
  return watch.elapsed_seconds() / static_cast<double>(kIterations);
}

}  // namespace

int main() {
  const bench::BenchReport report("fig5_architectures");
  std::cout << "== Figure 5: exploitability of message m within 1 year (nmax = 2) ==\n\n";

  // Count every disarmed fault-site poll the three engine passes make, so
  // the overhead gate below can bound what the always-compiled hooks cost.
  util::fault::set_accounting(true);
  util::fault::reset_poll_count();

  util::Stopwatch serial_watch;
  const std::vector<AnalysisResult> serial = run_serial_baseline();
  const double serial_seconds = serial_watch.elapsed_seconds();

  util::Stopwatch fan_watch;
  const std::vector<AnalysisResult> fanned = run_parallel_fan();
  const double fan_seconds = fan_watch.elapsed_seconds();

  // The batch pass runs checkpointed (fresh directory, so it only records,
  // never replays): its persist count feeds the checkpoint-overhead gate the
  // same way the poll count feeds the fault-hook gate.
  namespace fs = std::filesystem;
  const fs::path checkpoint_dir =
      fs::temp_directory_path() /
      ("autosec-bench-ckpt-" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(checkpoint_dir);
  csl::CheckpointOptions checkpoint_options;
  checkpoint_options.dir = checkpoint_dir.string();
  checkpoint_options.identity = "bench-fig5";
  checkpoint_options.interval_ms = 250;  // the CLI/serve default cadence
  auto ledger = std::make_shared<csl::CheckpointLedger>(checkpoint_options);

  csl::SessionStats batch_stats;
  util::Stopwatch batch_watch;
  const std::vector<AnalysisResult> batched =
      run_batch_sessions(batch_stats, ledger);
  const double batch_seconds = batch_watch.elapsed_seconds();

  const uint64_t fault_polls = util::fault::poll_count();
  util::fault::set_accounting(false);

  // The figure, from the parallel-fan results (task order is category-minor).
  const std::vector<Task> all = tasks();
  const auto result_of = [&](SecurityCategory category, Protection protection,
                             int arch) -> const AnalysisResult& {
    for (size_t i = 0; i < all.size(); ++i) {
      if (all[i].protection == protection && all[i].arch == arch &&
          all[i].category == category) {
        return fanned[i];
      }
    }
    throw std::logic_error("task not found");
  };

  for (const SecurityCategory category : kCategories) {
    std::printf("--- %s ---\n", category_name(category).data());
    util::TextTable table({"Protection", "Arch 1", "Arch 2", "Arch 3",
                           "paper (A1/A2/A3)"});
    for (const Protection protection : kProtections) {
      std::vector<std::string> row{std::string(protection_name(protection))};
      std::string paper;
      for (int arch = 1; arch <= 3; ++arch) {
        const AnalysisResult& result = result_of(category, protection, arch);
        row.push_back(util::format_percent(result.exploitable_fraction));
        paper += util::format_sig(paper_value(category, protection, arch), 3) + "%";
        if (arch < 3) paper += " / ";
      }
      row.push_back(paper);
      table.add_row(row);
    }
    std::cout << table << "\n";
  }

  std::cout << "Shape checks reproduced from the paper's discussion:\n"
               "  * CMAC128 equals unencrypted for confidentiality, improves integrity;\n"
               "  * AES128 improves confidentiality AND integrity;\n"
               "  * availability is protection-independent (bus-level property);\n"
               "  * Architecture 3 (FlexRay + bus guardian) is an order of magnitude\n"
               "    more secure; Architecture 2 is no dramatic improvement over 1.\n";

  std::printf("\n== staged engine vs serial baseline (27 analyses) ==\n");
  std::printf("serial baseline  (1 thread, 27 models):          %.3f s\n",
              serial_seconds);
  std::printf("parallel fan     (4 threads, 27 models):         %.3f s\n",
              fan_seconds);
  std::printf("batch sessions   (4 threads, 9 shared models):   %.3f s\n",
              batch_seconds);
  std::printf("  batch stages: compile %.3f s (x%zu)  explore %.3f s (x%zu)  "
              "solve %.3f s CPU (%zu properties)\n",
              batch_stats.compile_seconds, batch_stats.compile_count,
              batch_stats.explore_seconds, batch_stats.explore_count,
              batch_stats.solve_seconds, batch_stats.check_count);
  const double speedup = serial_seconds / std::max(fan_seconds, 1e-12);
  const double fan_diff = max_difference(serial, fanned);
  const double batch_diff = max_difference(serial, batched);
  std::printf("speedup (parallel fan): %.2fx\n", speedup);
  std::printf("max normalized difference vs serial: parallel fan %.3g, "
              "batch sessions %.3g\n",
              fan_diff, batch_diff);
  if (speedup < 2.0) std::printf("WARNING: speedup below the 2x target\n");
  if (fan_diff > 1e-8 || batch_diff > 1e-8) {
    std::printf("WARNING: results differ beyond 1e-8\n");
  }

  // Disarmed fault-hook overhead: the engine polled `fault_polls` sites over
  // the three passes; each poll costs one relaxed atomic load. Attribute
  // polls x micro-measured per-poll cost to the combined engine wall time —
  // the CI gate requires this fraction to stay under 2%.
  const double engine_seconds = serial_seconds + fan_seconds + batch_seconds;
  const double poll_seconds = measure_disarmed_poll_seconds();
  const double fault_overhead =
      static_cast<double>(fault_polls) * poll_seconds / std::max(engine_seconds, 1e-12);
  std::printf("fault hooks: %llu polls x %.3g ns/poll = %.3g%% of engine wall\n",
              static_cast<unsigned long long>(fault_polls), poll_seconds * 1e9,
              fault_overhead * 100.0);

  // Checkpoint overhead on the one pass that checkpointed: persists made
  // during the batch run x the micro-measured cost of one persist (full
  // snapshot serialize + temp-write + rename at the job's real record count),
  // as a fraction of that pass's wall time. The CI gate bounds it at 2%.
  const uint64_t checkpoint_persists = ledger->persists();
  const double persist_seconds = measure_persist_seconds(*ledger);
  const double checkpoint_overhead = static_cast<double>(checkpoint_persists) *
                                     persist_seconds /
                                     std::max(batch_seconds, 1e-12);
  std::printf(
      "checkpointing: %llu persists x %.3g us/persist = %.3g%% of batch wall\n",
      static_cast<unsigned long long>(checkpoint_persists),
      persist_seconds * 1e6, checkpoint_overhead * 100.0);
  ledger.reset();  // final flush before the snapshot directory goes away
  std::error_code cleanup_error;
  fs::remove_all(checkpoint_dir, cleanup_error);

  // Gauges for the CI regression gate (tools/check_bench_regression.py):
  // bench.agreement_* must stay within tolerance, bench.wall_seconds (written
  // by BenchReport) is compared against the committed baseline, and
  // bench.fault_overhead_fraction must stay below the disarmed-hook budget.
  util::metrics::Registry& metrics = util::metrics::registry();
  metrics.gauge("bench.speedup_parallel_fan", speedup);
  metrics.gauge("bench.agreement_fan_vs_serial", fan_diff);
  metrics.gauge("bench.agreement_batch_vs_serial", batch_diff);
  metrics.gauge("bench.fault_overhead_fraction", fault_overhead);
  metrics.gauge("bench.checkpoint_overhead_fraction", checkpoint_overhead);

  // Kernel throughput: uniformization products per second of solve span,
  // gated as a floor (a kernel regression shows up here even when the
  // products count drops through steady-state truncation).
  const util::metrics::SpanStats solve_span = metrics.span_stats("solve");
  const uint64_t mat_vecs = metrics.counter_value("ctmc.matrix_vector_products");
  if (solve_span.seconds > 0.0) {
    metrics.gauge("solve.mat_vec_per_sec",
                  static_cast<double>(mat_vecs) / solve_span.seconds);
  }
  std::printf("solve kernels: %llu matrix-vector products in %.3f s solve span\n",
              static_cast<unsigned long long>(mat_vecs), solve_span.seconds);
  return 0;
}
