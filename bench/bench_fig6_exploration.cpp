// Regenerates Figure 6: sensitivity of message-m exploitability in
// Architecture 1 to the telematics ECU's rates, swept from once per decade
// (0.1/year) to once per hour (8760/year).
//   (a) patching rate phi_3G varied, eta_3G(uplink) fixed at 1.9;
//   (b) exploitation rate eta_3G(uplink) varied, phi_3G fixed at 52.
// Also derives the paper's two engineering conclusions: the patch rate
// needed to stay under 0.5% exploitability (paper: phi ~ 6, every 2 months)
// and the maximum tolerable exploitation rate at weekly patching (paper:
// eta ~ 12, once a month).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "automotive/transform.hpp"
#include "bench_util.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

std::vector<double> log_sweep(double low, double high, int points) {
  std::vector<double> out;
  for (int i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / (points - 1);
    out.push_back(low * std::pow(high / low, t));
  }
  return out;
}

double exploitability_with(const std::string& constant, double value) {
  AnalysisOptions options;
  options.nmax = 2;
  options.constant_overrides = {{constant, symbolic::Value::of(value)}};
  const Architecture arch = cs::architecture(1, Protection::kUnencrypted);
  return analyze_message(arch, cs::kMessage, SecurityCategory::kConfidentiality,
                         options)
      .exploitable_fraction;
}

/// First swept value whose exploitability is below `threshold` (for the
/// phi sweep) — linear scan over the already-computed series.
double crossing(const std::vector<double>& xs, const std::vector<double>& ys,
                double threshold, bool below) {
  for (size_t i = 0; i < xs.size(); ++i) {
    if (below ? ys[i] <= threshold : ys[i] >= threshold) return xs[i];
  }
  return std::nan("");
}

}  // namespace

int main() {
  const bench::BenchReport report("fig6_exploration");
  std::cout << "== Figure 6: parameter exploration, Architecture 1, message m ==\n";
  std::cout << "(confidentiality, unencrypted, nmax = 2; exploitability as fraction\n"
               " of one year; rates in 1/year)\n\n";

  const std::vector<double> rates = log_sweep(0.1, 8760.0, 21);

  std::cout << "--- (a) varying 3G patching rate (eta_3G fixed at 1.9) ---\n";
  const std::string phi_constant = ecu_phi_constant(cs::kTelematics);
  util::TextTable table_a({"phi_3G (1/year)", "m exploitability"});
  std::vector<double> ys_a;
  for (const double phi : rates) {
    const double y = exploitability_with(phi_constant, phi);
    ys_a.push_back(y);
    table_a.add_row({util::format_sig(phi, 4), util::format_percent(y)});
  }
  std::cout << table_a << "\n";

  std::cout << "--- (b) varying 3G uplink exploitation rate (phi_3G fixed at 52) ---\n";
  const std::string eta_constant = interface_eta_constant(cs::kTelematics, cs::kUplink);
  util::TextTable table_b({"eta_3G (1/year)", "m exploitability"});
  std::vector<double> ys_b;
  for (const double eta : rates) {
    const double y = exploitability_with(eta_constant, eta);
    ys_b.push_back(y);
    table_b.add_row({util::format_sig(eta, 4), util::format_percent(y)});
  }
  std::cout << table_b << "\n";

  // The paper states a "threshold of 0.5% exploitability" and reads phi ~ 6
  // and eta ~ 12 off Fig. 6 — numbers only consistent with its own Fig. 5
  // (12.2% at phi = 52) if the threshold is the *fraction* 0.5 (50%) on the
  // figure's log axis. Both readings are reported; EXPERIMENTS.md discusses.
  for (const double threshold : {0.5, 0.005}) {
    const double phi_needed = crossing(rates, ys_a, threshold, /*below=*/true);
    const double eta_max = crossing(rates, ys_b, threshold, /*below=*/false);
    std::printf("Threshold %.1f%% exploitable time:\n", threshold * 100.0);
    std::printf("  patch rate needed:          phi_3G >= %.3g /year\n", phi_needed);
    std::printf("  max tolerable exploit rate: eta_3G <= %.3g /year\n", eta_max);
  }
  std::cout << "(paper, at its printed \"0.5%\" threshold: phi ~ 6/year — every two\n"
               " months — and eta <= 12/year; see the 50% row for the consistent\n"
               " reading on our model.)\n";
  std::cout << "\nBoth curves exhibit the paper's exponential saturation: large effect at\n"
               "the low end of the rate spectrum, little gain beyond it.\n";
  return 0;
}
