// google-benchmark microbenchmarks for the model-checking engine itself:
// state-space exploration, uniformization-based transient analysis,
// cumulative rewards, steady state, and Poisson weight generation. These are
// ours (not a paper artifact) and exist to track engine regressions.
#include <benchmark/benchmark.h>

#include <memory>

#include "automotive/casestudy.hpp"
#include "automotive/transform.hpp"
#include "csl/checker.hpp"
#include "ctmc/lumping.hpp"
#include "ctmc/poisson.hpp"
#include "ctmc/rewards.hpp"
#include "ctmc/simulation.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "symbolic/explorer.hpp"

namespace {

using namespace autosec;
namespace cs = automotive::casestudy;

symbolic::CompiledModel case_study_model(int nmax) {
  automotive::TransformOptions options;
  options.message = cs::kMessage;
  options.category = automotive::SecurityCategory::kConfidentiality;
  options.nmax = nmax;
  return symbolic::compile(automotive::transform(
      cs::architecture(1, automotive::Protection::kAes128), options));
}

void BM_Exploration(benchmark::State& state) {
  const symbolic::CompiledModel compiled = case_study_model(
      static_cast<int>(state.range(0)));
  size_t states = 0;
  for (auto _ : state) {
    const symbolic::StateSpace space = symbolic::explore(compiled);
    states = space.state_count();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Exploration)->Arg(1)->Arg(2)->Arg(3);

void BM_TransientDistribution(benchmark::State& state) {
  const symbolic::StateSpace space =
      symbolic::explore(case_study_model(static_cast<int>(state.range(0))));
  const ctmc::Ctmc chain = space.to_ctmc();
  const std::vector<double> initial = space.initial_distribution();
  for (auto _ : state) {
    const auto dist = ctmc::transient_distribution(chain, initial, 1.0);
    benchmark::DoNotOptimize(dist.data());
  }
  state.counters["states"] = static_cast<double>(chain.state_count());
}
BENCHMARK(BM_TransientDistribution)->Arg(1)->Arg(2)->Arg(3);

void BM_CumulativeReward(benchmark::State& state) {
  const symbolic::StateSpace space =
      symbolic::explore(case_study_model(static_cast<int>(state.range(0))));
  const ctmc::Ctmc chain = space.to_ctmc();
  const std::vector<double> initial = space.initial_distribution();
  const std::vector<double> rewards =
      space.reward_vector(automotive::kExposureReward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctmc::expected_cumulative_reward(chain, initial, rewards, 1.0));
  }
}
BENCHMARK(BM_CumulativeReward)->Arg(1)->Arg(2);

void BM_SteadyState(benchmark::State& state) {
  const symbolic::StateSpace space =
      symbolic::explore(case_study_model(static_cast<int>(state.range(0))));
  const ctmc::Ctmc chain = space.to_ctmc();
  const std::vector<double> initial = space.initial_distribution();
  for (auto _ : state) {
    const auto result = ctmc::steady_state(chain, initial);
    benchmark::DoNotOptimize(result.distribution.data());
  }
}
BENCHMARK(BM_SteadyState)->Arg(1)->Arg(2);

void BM_FullPropertyCheck(benchmark::State& state) {
  const symbolic::StateSpace space = symbolic::explore(case_study_model(2));
  const csl::Checker checker(std::make_shared<const symbolic::StateSpace>(space));
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check("R{\"exposure\"}=? [ C<=1 ]"));
  }
}
BENCHMARK(BM_FullPropertyCheck);

void BM_Lumping(benchmark::State& state) {
  const symbolic::StateSpace space =
      symbolic::explore(case_study_model(static_cast<int>(state.range(0))));
  const ctmc::Ctmc chain = space.to_ctmc();
  const std::vector<std::vector<bool>> masks = {
      space.label_mask(automotive::kViolatedLabel)};
  const std::vector<std::vector<double>> rewards = {
      space.reward_vector(automotive::kExposureReward)};
  const std::vector<double> initial = space.initial_distribution();
  size_t blocks = 0;
  for (auto _ : state) {
    const auto result = ctmc::lump_preserving(chain, masks, rewards, &initial);
    blocks = result.block_count;
    benchmark::DoNotOptimize(blocks);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
}
BENCHMARK(BM_Lumping)->Arg(1)->Arg(2);

void BM_SimulationTrajectories(benchmark::State& state) {
  const symbolic::StateSpace space = symbolic::explore(case_study_model(2));
  const ctmc::Ctmc chain = space.to_ctmc();
  const std::vector<bool> violated = space.label_mask(automotive::kViolatedLabel);
  ctmc::SimulationOptions options;
  options.samples = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctmc::estimate_time_fraction(
        chain, static_cast<uint32_t>(space.initial_state()), violated, 1.0, options));
  }
}
BENCHMARK(BM_SimulationTrajectories)->Arg(100)->Arg(1000);

void BM_PoissonWeights(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto weights = ctmc::poisson_weights(lambda);
    benchmark::DoNotOptimize(weights.weights.data());
  }
}
BENCHMARK(BM_PoissonWeights)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace
