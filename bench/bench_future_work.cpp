// The paper's Section-5 future-work experiments, implemented:
//  (a) Ethernet backbones ("more complex systems, e.g., comprising
//      Ethernet"): the Architecture-1 topology with its telematics backbone
//      realized as CAN vs FlexRay vs switched Ethernet.
//  (b) Combined security + reliability analysis: availability of message m
//      when the endpoints can also fail randomly, decomposed into attack-
//      and failure-driven unavailability.
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

/// Architecture-1 topology with a configurable backbone: NET + backbone
/// {3G, GW, PA} + CAN2 {GW, PS}; m: PA -> PS over {backbone, CAN2}.
Architecture with_backbone(BusKind kind) {
  Architecture arch;
  arch.name = std::string(bus_kind_name(kind)) + " backbone";
  arch.buses.push_back({"NET", BusKind::kInternet, std::nullopt, std::nullopt});
  Bus backbone;
  backbone.name = "BB";
  backbone.kind = kind;
  if (kind == BusKind::kFlexRay) backbone.guardian = GuardianSpec{0.2, 4.0};
  if (kind == BusKind::kEthernet) backbone.eth_switch = SwitchSpec{1.2, 12.0};
  arch.buses.push_back(backbone);
  arch.buses.push_back({"CAN2", BusKind::kCan, std::nullopt, std::nullopt});

  const cs::Rates rates;
  Ecu telematics{"3G", rates.phi_3g, assess::Asil::kA,
                 {{"NET", rates.eta_3g_net, std::nullopt},
                  {"BB", rates.eta_3g_bus, std::nullopt}},
                 std::nullopt};
  Ecu gateway{"GW", rates.phi_gw, assess::Asil::kD,
              {{"BB", rates.eta_gw, std::nullopt}, {"CAN2", rates.eta_gw, std::nullopt}},
              std::nullopt};
  Ecu park_assist{"PA", rates.phi_pa, assess::Asil::kC,
                  {{"BB", rates.eta_pa, std::nullopt}}, std::nullopt};
  Ecu power_steering{"PS", rates.phi_ps, assess::Asil::kD,
                     {{"CAN2", rates.eta_ps, std::nullopt}}, std::nullopt};
  arch.ecus = {telematics, gateway, park_assist, power_steering};

  Message m;
  m.name = "m";
  m.sender = "PA";
  m.receivers = {"PS"};
  m.buses = {"BB", "CAN2"};
  arch.messages.push_back(m);
  arch.validate();
  return arch;
}

}  // namespace

int main() {
  AnalysisOptions options;
  options.nmax = 2;

  std::cout << "== Future work (a): backbone technology comparison ==\n"
               "(Architecture-1 topology; message m in all three categories)\n\n";
  util::TextTable backbone_table(
      {"Backbone", "confidentiality", "integrity", "availability",
       "mean time to breach (avail.)"});
  for (const BusKind kind : {BusKind::kCan, BusKind::kFlexRay, BusKind::kEthernet}) {
    const Architecture arch = with_backbone(kind);
    std::vector<std::string> row{std::string(bus_kind_name(kind))};
    double mttb = 0.0;
    for (const SecurityCategory category :
         {SecurityCategory::kConfidentiality, SecurityCategory::kIntegrity,
          SecurityCategory::kAvailability}) {
      const AnalysisResult result = analyze_message(arch, "m", category, options);
      row.push_back(util::format_percent(result.exploitable_fraction));
      if (category == SecurityCategory::kAvailability) mttb = result.mean_time_to_breach;
    }
    row.push_back(util::format_sig(mttb, 3) + " years");
    backbone_table.add_row(row);
  }
  std::cout << backbone_table << "\n";
  std::cout << "FlexRay (guardian) and switched Ethernet both cut exposure by an order\n"
               "of magnitude versus shared CAN; Ethernet's switch is a single point\n"
               "whose hardening (eta_sw_bb / phi_sw_bb sweeps) directly controls it.\n\n";

  std::cout << "== Future work (b): combined security + reliability ==\n"
               "(CAN backbone; PA/PS with failure specs; availability of m)\n\n";
  util::TextTable reliability_table({"PA/PS failure rate (1/year)", "total unavail.",
                                     "attack-driven", "failure-driven"});
  for (const double failure_rate : {0.0, 0.1, 0.5, 2.0}) {
    Architecture arch = with_backbone(BusKind::kCan);
    if (failure_rate > 0.0) {
      for (auto* name : {"PA", "PS"}) {
        for (Ecu& ecu : arch.ecus) {
          if (ecu.name == name) ecu.failure = FailureSpec{failure_rate, 52.0};
        }
      }
    }
    const SecurityAnalysis analysis(arch, "m", SecurityCategory::kAvailability,
                                    options);
    const double total = analysis.check("R{\"exposure\"}=? [ C<=1 ]");
    const double attack = analysis.check("R{\"exposure_attack\"}=? [ C<=1 ]");
    const double failure = analysis.check("R{\"exposure_failure\"}=? [ C<=1 ]");
    reliability_table.add_row({util::format_sig(failure_rate, 3),
                               util::format_percent(total),
                               util::format_percent(attack),
                               util::format_percent(failure)});
  }
  std::cout << reliability_table << "\n";
  std::cout << "At workshop-grade repair cadence (weekly), random failures overtake\n"
               "attacks as the dominant unavailability source once endpoints fail\n"
               "more than ~1-2 times per year — the combined analysis ranks both\n"
               "risk classes on one scale, as the paper's future work envisioned.\n";
  return 0;
}
