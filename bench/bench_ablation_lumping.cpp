// Ablation: ordinary lumping as the paper's proposed "targeted model checker"
// (Section 5 future work — merging redundant states to address scalability).
// Compares state counts, runtimes and results of the direct vs the lumped
// checking path, on the case-study models and on a symmetric fleet model
// where lumping shines.
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "csl/lumped.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

/// Architecture 1 plus `k` identical body ECUs on CAN2 — symmetric structure
/// the lumper can exploit.
Architecture fleet(int k) {
  Architecture arch = cs::architecture(1, Protection::kUnencrypted);
  arch.name = "Arch 1 + " + std::to_string(k) + " identical ECUs";
  for (int i = 0; i < k; ++i) {
    Ecu body;
    body.name = "BODY" + std::to_string(i);
    body.phi = 12.0;
    Interface iface;
    iface.bus = cs::kCan2;
    iface.eta = 1.2;
    body.interfaces.push_back(iface);
    arch.ecus.push_back(body);
  }
  return arch;
}

void run(const Architecture& arch, int nmax, util::TextTable& table) {
  AnalysisOptions options;
  options.nmax = nmax;
  const SecurityAnalysis analysis(arch, cs::kMessage,
                                  SecurityCategory::kConfidentiality, options);
  const char* property = "R{\"exposure\"}=? [ C<=1 ]";

  util::Stopwatch direct_watch;
  const double direct = analysis.check(property);
  const double direct_seconds = direct_watch.elapsed_seconds();

  util::Stopwatch lumped_watch;
  const csl::LumpedCheckResult lumped = csl::check_lumped(analysis.space(), property);
  const double lumped_seconds = lumped_watch.elapsed_seconds();

  table.add_row({arch.name, std::to_string(nmax),
                 std::to_string(lumped.original_states),
                 std::to_string(lumped.lumped_states),
                 util::format_sig(lumped.reduction_factor(), 4),
                 util::format_sig(direct_seconds, 3),
                 util::format_sig(lumped_seconds, 3),
                 util::format_sig(std::abs(direct - lumped.value), 2)});
}

}  // namespace

int main() {
  std::cout << "== Ablation: lumped (\"targeted\") checking vs direct checking ==\n"
               "(property: R{\"exposure\"}=?[C<=1], confidentiality, unencrypted)\n\n";
  util::TextTable table({"Model", "nmax", "states", "lumped", "reduction",
                         "direct (s)", "lumped (s)", "|diff|"});
  for (int which = 1; which <= 3; ++which) {
    run(cs::architecture(which, Protection::kUnencrypted), 2, table);
  }
  for (int k : {2, 4, 6}) {
    run(fleet(k), 2, table);
  }
  std::cout << table << "\n";
  std::cout
      << "The case-study models have few symmetries (every interface has its own\n"
         "rate), so their reduction is modest; the fleet models with k identical\n"
         "ECUs collapse combinatorially (the lumper only tracks how *many* are\n"
         "exploited, not which). Results agree to solver tolerance in all rows —\n"
         "ordinary lumping is exact, confirming it as a sound scalability lever\n"
         "for the paper's future-work checker.\n";
  return 0;
}
