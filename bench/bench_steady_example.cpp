// Regenerates the paper's worked example (Section 3.3, Eqs. 13-15): the
// transition-rate matrix Q of the Fig. 3 model and its stationary
// distribution pi = (0.96296, 0.036338, 0.000699), plus the reward-based
// property the paper contrasts it with (R{s2}=?[F<1]-style cumulated time).
#include <cstdio>
#include <memory>
#include <iostream>

#include "automotive/casestudy.hpp"
#include "csl/checker.hpp"
#include "symbolic/explorer.hpp"

using namespace autosec;

int main() {
  std::cout << "== Worked example: Fig. 3 model, Eqs. 13-15 ==\n\n";

  const symbolic::Model model =
      automotive::casestudy::figure3_example(/*eta3g=*/2.0, /*etamc=*/2.0,
                                             /*phi3g=*/52.0, /*phimc=*/52.0);
  const symbolic::StateSpace space = symbolic::explore(symbolic::compile(model));
  std::printf("states: %zu (s0, s1, s2), transitions: %zu\n\n", space.state_count(),
              space.transition_count());

  const ctmc::Ctmc chain = space.to_ctmc();
  std::cout << "Transition rate matrix Q (paper Eq. 14):\n"
            << chain.generator().to_dense_string(4)
            << "paper:  -2 2 0 / 52 -54 2 / 52 52 -104\n\n";

  const csl::Checker checker(std::make_shared<const symbolic::StateSpace>(space));
  const double s0 = checker.check("S=? [ \"s0\" ]");
  const double s1 = checker.check("S=? [ \"s1\" ]");
  const double s2 = checker.check("S=? [ \"s2\" ]");
  std::cout << "Stationary distribution pi (paper Eq. 15):\n";
  std::printf("  pi(s0) = %.6f   (paper 0.96296)\n", s0);
  std::printf("  pi(s1) = %.6f   (paper 0.036338)\n", s1);
  std::printf("  pi(s2) = %.8f (paper 0.000699)\n\n", s2);

  std::cout << "Reward-based property (Section 3.3): expected cumulated time in s2\n"
               "within one year, starting secure (the paper's R{s2}=?[F<1] reward):\n";
  const double cumulated = checker.check("R{\"in_s2\"}=? [ C<=1 ]");
  std::printf("  R{\"in_s2\"}=?[C<=1] = %.3e years (%.5f%% of the year)\n", cumulated,
              cumulated * 100.0);
  const double breach = checker.check("P=? [ F<=1 \"s2\" ]");
  std::printf("  P=?[F<=1 \"s2\"]     = %.5f (probability s2 is ever reached in year 1)\n",
              breach);
  std::cout << "\nAs the paper argues, the transient reward view differs from the\n"
               "stationary probability (" << s2 << ") because the system starts secure.\n";
  return 0;
}
