// Regenerates the paper's Section 4 scalability observations: state-space
// size and runtime as functions of nmax and architecture complexity. The
// paper reports 4x10^5 - 1.2x10^6 states and 15min-1.5h per property with
// PRISM; our explicit-state engine handles the same case-study models with
// far smaller state spaces (no instantaneously-merged submodule states), so
// an extended synthetic architecture scales the model into the paper's
// state-count regime to demonstrate the states-vs-runtime correlation.
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "util/stopwatch.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

/// Case-study Architecture 1 extended with `extra_ecus` additional body ECUs
/// on CAN2 — the "more complex functions involve more devices" axis of
/// Section 4.3.
Architecture extended_architecture(int extra_ecus) {
  Architecture arch = cs::architecture(1, Protection::kAes128);
  arch.name = "Architecture 1 + " + std::to_string(extra_ecus) + " ECUs";
  for (int i = 0; i < extra_ecus; ++i) {
    Ecu body;
    body.name = "BODY" + std::to_string(i);
    body.phi = 12.0;
    body.asil = assess::Asil::kC;
    Interface iface;
    iface.bus = cs::kCan2;
    iface.eta = 1.2;
    body.interfaces.push_back(iface);
    arch.ecus.push_back(body);
  }
  return arch;
}

void run(const Architecture& arch, int nmax, util::TextTable& table) {
  AnalysisOptions options;
  options.nmax = nmax;
  const SecurityAnalysis analysis(arch, cs::kMessage,
                                  SecurityCategory::kConfidentiality, options);
  util::Stopwatch watch;
  const double fraction = analysis.check("R{\"exposure\"}=? [ C<=1 ]");
  const double check_seconds = watch.elapsed_seconds();
  table.add_row({arch.name, std::to_string(nmax),
                 std::to_string(analysis.space().state_count()),
                 std::to_string(analysis.space().transition_count()),
                 util::format_sig(analysis.build_seconds(), 3),
                 util::format_sig(check_seconds, 3), util::format_percent(fraction)});
}

}  // namespace

int main() {
  std::cout << "== Scalability (Section 4 / 4.3): states vs runtime ==\n\n";
  util::TextTable table({"Model", "nmax", "States", "Transitions", "Build (s)",
                         "Check (s)", "m conf. exploitability"});

  // nmax axis on the three case-study architectures.
  for (int which = 1; which <= 3; ++which) {
    for (int nmax = 1; nmax <= 3; ++nmax) {
      Architecture arch = cs::architecture(which, Protection::kAes128);
      run(arch, nmax, table);
    }
  }

  // Architecture-size axis into the paper's state-count regime:
  // (nmax+1)^(interfaces) x 2 states = 13k / 118k / 1.06M for +2 / +4 / +6.
  for (int extra : {2, 4, 6}) {
    run(extended_architecture(extra), 2, table);
  }

  std::cout << table << "\n";
  std::cout << "As in the paper, runtime correlates with the number of states; the\n"
               "paper's 4x10^5-1.2x10^6 figures include PRISM's unmerged instantaneous\n"
               "submodule states, which our direct product model avoids (DESIGN.md 5.5).\n";
  return 0;
}
