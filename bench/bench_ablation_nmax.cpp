// Ablation: the exploit-count cap nmax (Eq. 1 bounds each module at nmax
// parallel exploits; the paper's experiments use nmax = 2 and note the cap
// trades model size against fidelity). Sweeps nmax = 1..3 for all three
// architectures and reports how the headline metric converges while the
// state space grows geometrically.
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

int main() {
  std::cout << "== Ablation: exploit cap nmax (confidentiality, unencrypted) ==\n\n";
  util::TextTable table({"Architecture", "nmax", "States", "m exploitability",
                         "delta vs nmax-1"});
  for (int arch = 1; arch <= 3; ++arch) {
    double previous = 0.0;
    for (int nmax = 1; nmax <= 3; ++nmax) {
      AnalysisOptions options;
      options.nmax = nmax;
      const AnalysisResult result =
          analyze_message(cs::architecture(arch, Protection::kUnencrypted),
                          cs::kMessage, SecurityCategory::kConfidentiality, options);
      const double fraction = result.exploitable_fraction;
      table.add_row({"Architecture " + std::to_string(arch), std::to_string(nmax),
                     std::to_string(result.state_count),
                     util::format_percent(fraction),
                     nmax == 1 ? "-"
                               : util::format_sig((fraction - previous) * 100.0, 3) +
                                     " pp"});
      previous = fraction;
    }
  }
  std::cout << table << "\n";
  std::cout << "nmax = 1 already captures most of the exposure; the nmax = 2 used by\n"
               "the paper adds the second-exploit refinement at ~10x the states, and\n"
               "nmax = 3 changes little — supporting the paper's small-cap abstraction.\n";
  return 0;
}
