// Ablation: the two guard-semantics decisions documented in DESIGN.md 5.
//
// (1) Eq. (2) literal patch guard ("patching requires the interface's bus to
//     be exploitable") vs the corrected unconditional patching. On pure-CAN
//     topologies the literal guard is provably vacuous: an exploited
//     interface makes its own ECU, and hence its own bus, exploitable
//     (Eqs. 3-4), so the guard always holds while there is something to
//     patch. On FlexRay the guard bites — the bus additionally needs the
//     guardian (Eq. 5) — and exposure rises.
//
// (2) Bus-guardian foothold: exploit the guardian unconditionally at its
//     CVSS rate (default, Table-2 style) vs only once an ECU on its bus is
//     compromised (strict AV:L reading).
#include <cstdio>
#include <iostream>

#include "automotive/analyzer.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive;
namespace cs = casestudy;

namespace {

double run(int arch, SecurityCategory category, bool literal_guard, bool foothold) {
  AnalysisOptions options;
  options.nmax = 2;
  options.literal_patch_guard = literal_guard;
  options.guardian_requires_foothold = foothold;
  return analyze_message(cs::architecture(arch, Protection::kUnencrypted), cs::kMessage,
                         category, options)
      .exploitable_fraction;
}

}  // namespace

int main() {
  std::cout << "== Ablation 1: Eq. (2) literal patch guard vs corrected semantics ==\n\n";
  util::TextTable guard_table({"Architecture", "Category", "corrected", "literal Eq.(2)",
                               "ratio"});
  for (int arch = 1; arch <= 3; ++arch) {
    for (const SecurityCategory category :
         {SecurityCategory::kConfidentiality, SecurityCategory::kAvailability}) {
      const double corrected = run(arch, category, false, false);
      const double literal = run(arch, category, true, false);
      guard_table.add_row({"Architecture " + std::to_string(arch),
                           std::string(category_name(category)),
                           util::format_percent(corrected),
                           util::format_percent(literal),
                           util::format_sig(literal / corrected, 4)});
    }
  }
  std::cout << guard_table << "\n";
  std::cout << "Architectures 1-2 (CAN only): identical — the literal guard is vacuous\n"
               "on CAN (see DESIGN.md 5.2). Architecture 3 (FlexRay): the literal guard\n"
               "blocks patching while the guardian is secure, so exposure rises.\n\n";

  std::cout << "== Ablation 2: bus-guardian exploit precondition (Architecture 3) ==\n\n";
  util::TextTable bg_table({"Category", "unconditional (default)", "requires foothold",
                            "ratio"});
  for (const SecurityCategory category :
       {SecurityCategory::kConfidentiality, SecurityCategory::kIntegrity,
        SecurityCategory::kAvailability}) {
    const double unconditional = run(3, category, false, false);
    const double foothold = run(3, category, false, true);
    bg_table.add_row({std::string(category_name(category)),
                      util::format_percent(unconditional),
                      util::format_percent(foothold),
                      util::format_sig(foothold / unconditional, 4)});
  }
  std::cout << bg_table << "\n";
  std::cout << "The unconditional variant reproduces the paper's Fig. 5 magnitudes for\n"
               "Architecture 3 far better; the foothold variant compounds two rare\n"
               "events and drives exposure an order of magnitude lower.\n";
  return 0;
}
