// Regenerates Table 1: the CVSS exploitation-subscore categories with the
// paper's automotive interpretation, plus the full sigma/eta grid over all 27
// AV x AC x Au combinations (Eqs. 11-12).
#include <cstdio>
#include <iostream>

#include "assess/cvss.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::assess;

int main() {
  std::cout << "== Table 1: CVSS exploitation subscore (automotive interpretation) ==\n\n";

  util::TextTable table({"Category", "Subcategory", "Value", "Description"});
  table.add_row({"Access Vector (AV)", "L (Local)", "0.395", "Accessible only on device"});
  table.add_row({"", "A (Adjacent Network)", "0.646", "Accessible via directly attached bus"});
  table.add_row({"", "N (Network)", "1", "Accessible via any number of networks"});
  table.add_row({"Access Complexity (AC)", "H (High)", "0.35", "Device is generally secured"});
  table.add_row({"", "M (Medium)", "0.61", "Device is partially secured"});
  table.add_row({"", "L (Low)", "0.71", "Device is not secured"});
  table.add_row({"Authentication (Au)", "M (Multiple)", "0.45", "Multiple authentication steps required"});
  table.add_row({"", "S (Single)", "0.56", "One authentication step required"});
  table.add_row({"", "N (None)", "0.704", "No authentication is required"});
  std::cout << table << "\n";

  // Cross-check the enum weights against the printed table.
  const AccessVector avs[] = {AccessVector::kLocal, AccessVector::kAdjacentNetwork,
                              AccessVector::kNetwork};
  const AccessComplexity acs[] = {AccessComplexity::kHigh, AccessComplexity::kMedium,
                                  AccessComplexity::kLow};
  const Authentication aus[] = {Authentication::kMultiple, Authentication::kSingle,
                                Authentication::kNone};

  std::cout << "== Derived exploitability grid: sigma = 20*AV*AC*Au, eta = sigma - 1.3 ==\n\n";
  util::TextTable grid({"Vector", "sigma", "eta (1/year)"});
  for (const auto av : avs) {
    for (const auto ac : acs) {
      for (const auto au : aus) {
        CvssVector v{av, ac, au};
        grid.add_row({v.to_string(), util::format_sig(v.exploitability_score(), 4),
                      util::format_sig(v.exploitability_rate(), 4)});
      }
    }
  }
  std::cout << grid << "\n";

  std::cout << "Worked example (Section 3.2): telematics 3G uplink AV:N/AC:H/Au:M\n";
  const CvssVector telematics = parse_cvss_vector("AV:N/AC:H/Au:M");
  std::printf("  sigma = %.4f (paper: 3.15), eta = %.4f (paper: 1.85)\n",
              telematics.exploitability_score(), telematics.exploitability_rate());
  return 0;
}
