// Regenerates Table 2: the security assessment of the case-study components.
// For every row the exploitation rate eta is re-derived from its CVSS vector
// (Eqs. 11-12) and the patch rate phi from its ASIL level, and printed next
// to the paper's (rounded) values.
#include <iostream>
#include <string>

#include "assess/asil.hpp"
#include "assess/cvss.hpp"
#include "automotive/casestudy.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace autosec;
using namespace autosec::automotive::casestudy;

int main() {
  std::cout << "== Table 2: component assessment (exploitation & patching rates) ==\n\n";

  util::TextTable table({"Module", "Interface", "CVSS vector", "eta (paper)",
                         "eta (computed)", "ASIL", "phi (paper)", "phi (computed)"});
  for (const Table2Row& row : table2()) {
    std::string eta_paper = row.eta < 0.0 ? "inf (instant)" : util::format_sig(row.eta, 3);
    std::string eta_computed = "inf";
    if (row.eta >= 0.0 && row.cvss_vector[0] != '\0') {
      const auto vector = assess::parse_cvss_vector(row.cvss_vector);
      eta_computed = util::format_sig(vector.exploitability_rate(), 4);
    }
    std::string asil = row.asil[0] == '\0' ? "-" : row.asil;
    std::string phi_paper = row.asil[0] == '\0' ? "-" : util::format_sig(row.phi, 3);
    std::string phi_computed =
        row.asil[0] == '\0'
            ? "-"
            : util::format_sig(assess::patch_rate(assess::parse_asil(row.asil)), 3);
    table.add_row({row.module, row.interface,
                   row.cvss_vector[0] == '\0' ? "-" : row.cvss_vector, eta_paper,
                   eta_computed, asil, phi_paper, phi_computed});
  }
  std::cout << table << "\n";
  std::cout << "Computed eta differs from the paper's column only by the paper's\n"
               "one-decimal rounding (e.g. 1.85 -> 1.9, 1.23 -> 1.2).\n";
  return 0;
}
